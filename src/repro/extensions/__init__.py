"""Extensions beyond the paper's core results: adjacent models its related
work section points to, implemented on the same exact simulation substrate."""

from .bounded_speed import (
    CappedPowerLaw,
    CappedRun,
    simulate_clairvoyant_capped,
    simulate_nc_uniform_capped,
)
from .deadlines import (
    DeadlineInstance,
    avr_schedule,
    deadline_energy_lower_bound,
    validate_deadlines,
    yds_schedule,
)

__all__ = [
    "CappedPowerLaw",
    "CappedRun",
    "simulate_clairvoyant_capped",
    "simulate_nc_uniform_capped",
    "DeadlineInstance",
    "yds_schedule",
    "avr_schedule",
    "deadline_energy_lower_bound",
    "validate_deadlines",
]
