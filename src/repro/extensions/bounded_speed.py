"""Extension: speed-bounded processors.

The paper's related work (§1.3, citing Bansal–Chan–Lam–Lee [6]) studies the
same objective when the machine has a *maximum speed* ``s_max``.  This module
extends the reproduction to that model:

* :class:`CappedPowerLaw` — ``P(s) = s**alpha`` on ``[0, s_max]``; speeds
  above the cap are infeasible.
* :func:`simulate_clairvoyant_capped` — Algorithm C with the clipped speed
  rule ``s = min(P^{-1}(W), s_max)``: while the remaining weight exceeds
  ``P(s_max)`` the machine saturates at ``s_max`` (weight falls *linearly*),
  then the ordinary decay takes over.  Exact, event-driven.
* :func:`simulate_nc_uniform_capped` — Algorithm NC with the same clip on its
  growth rule ``s = min(P^{-1}(W^C(r-) + W̆), s_max)``.

A structural observation this extension demonstrates empirically (see
``benchmarks/bench_bounded_speed.py``): Lemma 3's **energy equality survives
the cap** — the clipped NC growth profile is still a time-reversed /
rearranged copy of the clipped C decay profile, both saturating at the same
level — while Lemma 4's exact flow ratio degrades gracefully as the cap
tightens (the paper's uncapped `1/(1-1/alpha)` is recovered as
``s_max -> inf``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import InvalidInstanceError, InvalidPowerFunctionError, SimulationError
from ..core.job import Instance
from ..core.kernels import growth_time_between
from ..core.power import PowerLaw
from ..core.schedule import ConstantSegment, DecaySegment, GrowthSegment, Schedule, ScheduleBuilder
from ..core.shadow import ClairvoyantShadow, SimulationContext

__all__ = [
    "CappedPowerLaw",
    "CappedRun",
    "simulate_clairvoyant_capped",
    "simulate_nc_uniform_capped",
]

class CappedPowerLaw(PowerLaw):
    """``P(s) = s**alpha`` with a hard maximum speed.

    Subclasses :class:`PowerLaw` so the analytic decay/growth segments (which
    only ever exist *below* the cap) keep their closed-form energies.
    ``power`` rejects infeasible speeds; ``speed`` clips at the cap — the
    natural semantics for the power-equals-weight rule ("run as the rule says,
    but never faster than the hardware allows").
    """

    __slots__ = ("s_max",)

    def __init__(self, alpha: float, s_max: float) -> None:
        super().__init__(alpha)
        if not (s_max > 0 and math.isfinite(s_max)):
            raise InvalidPowerFunctionError(f"s_max must be finite > 0, got {s_max}")
        self.s_max = float(s_max)

    @property
    def saturation_weight(self) -> float:
        """The weight level ``P(s_max)`` above which the machine saturates."""
        return self.s_max**self.alpha

    def power(self, speed: float) -> float:
        if speed > self.s_max * (1 + 1e-9):
            raise ValueError(f"speed {speed} exceeds the cap {self.s_max}")
        return super().power(min(speed, self.s_max))

    def speed(self, power: float) -> float:
        return min(super().speed(power), self.s_max)

    def __repr__(self) -> str:
        return f"CappedPowerLaw(alpha={self.alpha}, s_max={self.s_max})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CappedPowerLaw)
            and other.alpha == self.alpha
            and other.s_max == self.s_max
        )

    def __hash__(self) -> int:
        return hash(("CappedPowerLaw", self.alpha, self.s_max))


@dataclass(frozen=True)
class CappedRun:
    """Outcome of a capped simulation."""

    instance: Instance
    power: CappedPowerLaw
    schedule: Schedule
    clock: float
    remaining: dict[int, float]

    def completion_time(self, job_id: int) -> float:
        return self.schedule.completion_time(job_id, self.instance[job_id].volume)

    def max_observed_speed(self, samples: int = 512) -> float:
        end = self.schedule.end_time
        return max(
            self.schedule.speed_at(end * k / (samples - 1)) for k in range(samples)
        )


def simulate_clairvoyant_capped(
    instance: Instance,
    power: CappedPowerLaw,
    *,
    until: float | None = None,
    context: SimulationContext | None = None,
) -> CappedRun:
    """Algorithm C with speed clipped at ``s_max`` (exact, event-driven).

    Drives the same :class:`~repro.core.shadow.ClairvoyantShadow` event loop
    as the uncapped simulator, with ``s_max`` enabling the saturated linear
    phase; the shadow's ``record`` callback reconstructs the schedule
    (``const`` pieces at the cap, ``decay`` pieces below it).
    """
    if not isinstance(power, CappedPowerLaw):
        raise TypeError("use simulate_clairvoyant for uncapped power laws")
    alpha = power.alpha
    horizon = math.inf if until is None else float(until)
    builder = ScheduleBuilder()

    def record(kind: str, t0: float, t1: float, jid: int, value: float) -> None:
        if kind == "const":
            builder.append(ConstantSegment(t0, t1, jid, value))
        else:
            builder.append(DecaySegment(t0, t1, jid, value, instance[jid].density, alpha))

    shadow = ClairvoyantShadow(
        alpha,
        s_max=power.s_max,
        record=record,
        counters=context.counters if context is not None else None,
        recorder=context.recorder if context is not None else None,
        component="C_capped",
    )
    for job in instance.jobs:
        shadow.insert_job(job.job_id, job.release, job.density, job.volume)
    shadow.advance(horizon)
    shadow.materialize()
    return CappedRun(
        instance=instance,
        power=power,
        schedule=builder.build(),
        clock=shadow.clock,
        remaining=shadow.remaining_dict(),
    )


def simulate_nc_uniform_capped(
    instance: Instance,
    power: CappedPowerLaw,
    *,
    context: SimulationContext | None = None,
) -> CappedRun:
    """Algorithm NC (uniform densities) with speed clipped at ``s_max``.

    While processing job ``j`` the driver ``U = W^C(r[j]-) + W̆[j]`` grows;
    once ``U`` exceeds ``P(s_max)`` the machine saturates and ``U`` grows
    *linearly* to the job's end.  ``W^C(r[j]-)`` is read from one capped
    incremental clairvoyant prefix run so the shadow matches the hardware.
    """
    if not isinstance(power, CappedPowerLaw):
        raise TypeError("use simulate_nc_uniform for uncapped power laws")
    if not instance.is_uniform_density():
        raise InvalidInstanceError("the §3 algorithm requires uniform densities")
    alpha = power.alpha
    u_sat = power.saturation_weight
    if context is None:
        context = SimulationContext(power)
    oracle = context.prefix_oracle(component="NC_capped.prefix")
    recorder = context.recorder
    rec = recorder if recorder.enabled else None  # zero-overhead hoist
    filt = context.volume_filter  # fault reveal channel; None when unfaulted
    jobs = list(instance.jobs)
    revealed = 0
    builder = ScheduleBuilder()
    t = 0.0
    for job in instance:  # FIFO
        start = max(t, job.release)
        rho = job.density
        while revealed < len(jobs) and jobs[revealed].release < job.release:
            prev = jobs[revealed]
            vol = prev.volume
            if filt is not None:
                vol = filt(prev.job_id, vol)
                if not (math.isfinite(vol) and vol > 0.0):
                    raise SimulationError(
                        f"revealed volume of job {prev.job_id} corrupted to {vol}",
                        time=job.release,
                        job=prev.job_id,
                        value=vol,
                    )
            oracle.add_job(prev.job_id, prev.release, prev.density, vol)
            revealed += 1
        offset = oracle.weight_at(job.release) if revealed else 0.0

        if rec is not None:
            rec.emit(
                "release", job.release, "NC_capped", job=job.job_id, density=rho, offset=offset
            )
        u_end = offset + job.weight
        cursor = start
        if offset < u_sat:
            # Growth phase up to the cap (or the job's end).
            u_stop = min(u_end, u_sat)
            tau = growth_time_between(offset, u_stop, rho, alpha)
            if tau > 0:
                builder.append(GrowthSegment(cursor, cursor + tau, job.job_id, offset, rho, alpha))
                if rec is not None:
                    rec.emit(
                        "kernel_eval",
                        cursor,
                        "NC_capped",
                        profile="growth",
                        t0=cursor,
                        t1=cursor + tau,
                        job=job.job_id,
                        x0=offset,
                        rho=rho,
                        alpha=alpha,
                    )
                cursor += tau
            reached = u_stop
        else:
            reached = offset
        if u_end > reached:
            # Saturated phase: constant speed to the finish line.
            tau = (u_end - reached) / (rho * power.s_max)
            builder.append(ConstantSegment(cursor, cursor + tau, job.job_id, power.s_max))
            if rec is not None:
                rec.emit(
                    "kernel_eval",
                    cursor,
                    "NC_capped",
                    profile="const",
                    t0=cursor,
                    t1=cursor + tau,
                    job=job.job_id,
                    speed=power.s_max,
                    rho=rho,
                    alpha=alpha,
                )
            cursor += tau
        if cursor <= start:
            raise SimulationError(f"job {job.job_id} made no progress")
        if rec is not None:
            rec.emit("completion", cursor, "NC_capped", job=job.job_id)
        t = cursor
    return CappedRun(
        instance=instance, power=power, schedule=builder.build(), clock=t, remaining={}
    )
