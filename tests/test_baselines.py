"""Tests for the baseline schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Instance, Job, PowerLaw
from repro.algorithms.baselines import simulate_active_count, simulate_constant_speed_fifo
from repro.core.errors import InvalidInstanceError
from repro.core.metrics import evaluate

from conftest import uniform_instances


class TestConstantSpeedFifo:
    def test_simple_timing(self, cube):
        inst = Instance([Job(0, 0.0, 2.0), Job(1, 0.5, 2.0)])
        sched = simulate_constant_speed_fifo(inst, 2.0)
        assert sched.completion_time(0, 2.0) == pytest.approx(1.0)
        assert sched.completion_time(1, 2.0) == pytest.approx(2.0)

    def test_waits_for_release(self, cube):
        inst = Instance([Job(0, 5.0, 1.0)])
        sched = simulate_constant_speed_fifo(inst, 1.0)
        assert sched.completion_time(0, 1.0) == pytest.approx(6.0)

    def test_rejects_bad_speed(self, three_jobs):
        with pytest.raises(InvalidInstanceError):
            simulate_constant_speed_fifo(three_jobs, 0.0)

    @given(uniform_instances(max_jobs=6))
    @settings(max_examples=25, deadline=None)
    def test_valid_schedules(self, inst):
        power = PowerLaw(3.0)
        rep = evaluate(simulate_constant_speed_fifo(inst, 1.5), inst, power)
        assert rep.energy > 0

    def test_not_competitive_under_load(self, cube):
        """Scaling the number of simultaneous jobs blows up the ratio vs C —
        constant speed cannot react to backlog (why speed scaling exists)."""
        from repro.algorithms.clairvoyant import simulate_clairvoyant

        ratios = []
        for n in (4, 64):
            inst = Instance([Job(i, i * 1e-3, 1.0) for i in range(n)])
            base = evaluate(simulate_constant_speed_fifo(inst, 1.0), inst, cube)
            c = evaluate(simulate_clairvoyant(inst, cube).schedule, inst, cube)
            ratios.append(base.fractional_objective / c.fractional_objective)
        # Ratio grows ~ n^{1/3} / 2.4; at n=64 it clearly exceeds n=4.
        assert ratios[1] > 1.3 * ratios[0]


class TestActiveCount:
    def test_single_job_constant_speed(self, cube):
        inst = Instance([Job(0, 0.0, 1.0)])
        sched = simulate_active_count(inst, cube)
        assert sched.speed_at(0.1) == pytest.approx(1.0)  # P(s) = 1 active job

    def test_speed_rises_with_backlog(self, cube):
        inst = Instance([Job(0, 0.0, 5.0), Job(1, 0.5, 5.0)])
        sched = simulate_active_count(inst, cube)
        assert sched.speed_at(0.6) == pytest.approx(2.0 ** (1 / 3))
        assert sched.speed_at(0.1) == pytest.approx(1.0)

    def test_fifo_order(self, cube):
        inst = Instance([Job(0, 0.0, 3.0), Job(1, 0.1, 0.1)])
        sched = simulate_active_count(inst, cube)
        assert sched.completion_time(0, 3.0) < sched.completion_time(1, 0.1)

    def test_idle_gap(self, cube):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 10.0, 1.0)])
        sched = simulate_active_count(inst, cube)
        assert sched.speed_at(5.0) == 0.0

    @given(uniform_instances(max_jobs=6))
    @settings(max_examples=25, deadline=None)
    def test_valid_schedules(self, inst):
        power = PowerLaw(3.0)
        rep = evaluate(simulate_active_count(inst, power), inst, power)
        assert set(rep.completion_times) == set(inst.job_ids)

    def test_unit_jobs_matches_clairvoyant_weight_rule_roughly(self, cube):
        """For unit-volume unit-density jobs the active-count rule is the
        known-weight non-clairvoyant strategy; it should be within a constant
        of Algorithm C."""
        from repro.algorithms.clairvoyant import simulate_clairvoyant

        inst = Instance([Job(i, 0.3 * i, 1.0) for i in range(6)])
        ac = evaluate(simulate_active_count(inst, cube), inst, cube)
        c = evaluate(simulate_clairvoyant(inst, cube).schedule, inst, cube)
        assert ac.fractional_objective / c.fractional_objective < 4.0


class TestRoundRobin:
    def test_single_job_like_active_count(self, cube):
        from repro.algorithms.baselines import simulate_round_robin

        inst = Instance([Job(0, 0.0, 1.0)])
        rr = simulate_round_robin(inst, cube, quantum=0.1)
        assert rr.completion_time(0, 1.0) == pytest.approx(1.0)  # speed 1

    def test_time_sharing_interleaves(self, cube):
        from repro.algorithms.baselines import simulate_round_robin

        inst = Instance([Job(0, 0.0, 1.0), Job(1, 0.01, 1.0)])
        rr = simulate_round_robin(inst, cube, quantum=0.05)
        jobs_in_order = [s.job_id for s in rr.segments]
        # Both jobs appear before either completes (true time sharing).
        first_1 = jobs_in_order.index(1)
        assert 0 in jobs_in_order[first_1:]

    def test_completions_closer_than_fifo(self, cube):
        """RR equalises completion times of equal jobs; FIFO staggers them."""
        from repro.algorithms.baselines import (
            simulate_active_count,
            simulate_round_robin,
        )

        inst = Instance([Job(0, 0.0, 1.0), Job(1, 0.01, 1.0)])
        rr = simulate_round_robin(inst, cube, quantum=0.02)
        fifo = simulate_active_count(inst, cube)
        gap_rr = abs(rr.completion_time(1, 1.0) - rr.completion_time(0, 1.0))
        gap_fifo = abs(fifo.completion_time(1, 1.0) - fifo.completion_time(0, 1.0))
        assert gap_rr < gap_fifo

    def test_quantum_validation(self, cube, three_jobs):
        from repro.algorithms.baselines import simulate_round_robin

        with pytest.raises(InvalidInstanceError):
            simulate_round_robin(three_jobs, cube, quantum=0.0)

    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=15, deadline=None)
    def test_valid_schedules(self, inst):
        from repro.algorithms.baselines import simulate_round_robin

        power = PowerLaw(3.0)
        rep = evaluate(simulate_round_robin(inst, power, quantum=0.1), inst, power)
        assert set(rep.completion_times) == set(inst.job_ids)

    def test_converges_as_quantum_shrinks(self, cube):
        from repro.algorithms.baselines import simulate_round_robin

        inst = Instance([Job(0, 0.0, 1.0), Job(1, 0.05, 0.8), Job(2, 0.3, 0.5)])
        costs = []
        for q in (0.05, 0.025, 0.0125, 0.00625):
            rep = evaluate(simulate_round_robin(inst, cube, quantum=q), inst, cube)
            costs.append(rep.fractional_objective)
        # Rotation-phase effects make convergence non-monotone, but small
        # quanta must cluster tightly around the processor-sharing limit.
        spread = max(costs) - min(costs)
        assert spread < 0.02 * (sum(costs) / len(costs))
