"""E4 — Figure 3: the preemption-interval structure of Algorithm C.

The §4 analysis decomposes the waiting span of a low-density job j* into
preemption intervals where strictly higher-density jobs run.  We regenerate
the figure's structure — an instance where j* is released at t1, preempted
twice, with the final preemption interval still open at the 'current time' —
and print the interval table (R̂_i, V̂_i, W̄_i) the amortised analysis indexes.
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant
from repro.analysis import format_ascii_chart, format_table, preemption_intervals, speed_curve

from conftest import emit

ALPHA = 3.0


def _run():
    power = PowerLaw(ALPHA)
    # j* = job 0 (density 1); two waves of higher-density jobs preempt it.
    inst = Instance(
        [
            Job(0, 0.0, 6.0, 1.0),  # j*, long-running
            Job(1, 0.6, 0.8, 9.0),  # first preemption interval
            Job(2, 0.7, 0.4, 27.0),
            Job(3, 2.8, 1.5, 9.0),  # second (long) preemption interval
        ]
    )
    run = simulate_clairvoyant(inst, power)
    intervals = preemption_intervals(run, 0)
    return inst, run, intervals


def test_fig3_preemption_structure(benchmark):
    inst, run, intervals = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            iv.index,
            iv.start,
            iv.end,
            iv.volume,
            iv.weight_before,
            ",".join(str(j) for j in iv.preempting_jobs),
        ]
        for iv in intervals
    ]
    table = format_table(
        ["i", "R̂_i (start)", "end", "V̂_i (volume)", "W̄_i (weight before)", "jobs"],
        rows,
        title="Figure 3 — preemption intervals of j* = job 0 under Algorithm C",
        floatfmt=".4f",
    )
    curve = speed_curve(run.schedule, samples=72)
    chart = format_ascii_chart(
        [("machine speed", curve.times, curve.values)],
        title="Algorithm C speed over time (spikes = preemption intervals)",
        height=10,
    )
    emit("fig3_preemption", table + "\n\n" + chart)

    # Structure asserted: two disjoint chronological intervals, both after
    # j*'s release and before its completion, with positive preempting volume.
    assert len(intervals) == 2
    c0 = run.completion_time(0)
    for iv in intervals:
        assert inst[0].release <= iv.start < iv.end <= c0
        assert iv.volume > 0
    assert intervals[0].end <= intervals[1].start
