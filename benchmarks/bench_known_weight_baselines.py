"""E13 — the *other* non-clairvoyant column of Table 1, empirically.

Table 1 cites Chan et al. [11] for the known-weight/unknown-density model
(unit weights): ratio 2·alpha²/ln(alpha).  We run the two classic rules from
that line of work — power-equals-active-count with FIFO, and with round-robin
time sharing — on unit-volume (hence unit-weight, known) streams, next to
this paper's Algorithm NC, against the same certified lower bounds.

Shape to reproduce: on unit jobs, all three are constant-competitive and the
known-weight rules are comparable to NC; on *volume-spread* jobs the
known-weight rules have no guarantee in our model (they assume weights they
do not have) while NC's ratio stays below Theorem 5's bound.
"""

from __future__ import annotations

from repro import PowerLaw
from repro.analysis import format_table
from repro.core import evaluate
from repro.algorithms import (
    simulate_active_count,
    simulate_nc_uniform,
    simulate_round_robin,
)
from repro.offline import opt_fractional_lower_bound
from repro.workloads import random_instance

from conftest import emit

ALPHA = 3.0


def _measure(inst, power):
    lb = opt_fractional_lower_bound(inst, power, slots=200, iterations=800)
    out = {}
    out["NC (this paper)"] = evaluate(
        simulate_nc_uniform(inst, power).schedule, inst, power
    ).fractional_objective / lb.value
    out["active-count FIFO [11]-style"] = evaluate(
        simulate_active_count(inst, power), inst, power
    ).fractional_objective / lb.value
    out["active-count round-robin"] = evaluate(
        simulate_round_robin(inst, power, quantum=0.05), inst, power
    ).fractional_objective / lb.value
    return out


def _run():
    power = PowerLaw(ALPHA)
    rows = []
    for label, kwargs in (
        ("unit volumes", dict(volume="uniform", volume_params={"low": 0.999, "high": 1.001})),
        ("exponential volumes", dict(volume="exponential")),
        ("pareto volumes", dict(volume="pareto")),
        # The model separation: the active-count rule sets speed from the job
        # *count* only, so scaling all volumes up leaves it pitifully slow —
        # weight-aware rules (C, NC) scale their speed with the backlog.
        ("volumes x100", dict(volume="uniform", volume_params={"low": 90.0, "high": 110.0})),
    ):
        worst: dict[str, float] = {}
        for seed in (1, 2, 3):
            inst = random_instance(16, 700 + seed, **kwargs)
            for algo, ratio in _measure(inst, power).items():
                worst[algo] = max(worst.get(algo, 0.0), ratio)
        for algo, ratio in worst.items():
            rows.append([label, algo, ratio])
    return rows


def test_known_weight_baselines(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "algorithm", "worst ratio vs OPT_lb"],
        rows,
        title=f"Known-weight baselines vs this paper's NC (alpha = {ALPHA})",
        floatfmt=".3f",
    )
    emit("known_weight_baselines", table)
    worst_baseline_on_scaled = max(
        r for label, algo, r in rows if label == "volumes x100" and not algo.startswith("NC")
    )
    nc_on_scaled = max(
        r for label, algo, r in rows if label == "volumes x100" and algo.startswith("NC")
    )
    for label, algo, ratio in rows:
        if algo.startswith("NC"):
            assert ratio <= 2.0 + 1.0 / (ALPHA - 1.0) + 1e-6  # Theorem 5 everywhere
    # The separation: on scaled volumes the count-based rules degrade while
    # NC keeps its guarantee.
    assert worst_baseline_on_scaled > 1.5 * nc_on_scaled
