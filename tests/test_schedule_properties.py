"""Property tests over randomly-built schedules (not algorithm outputs).

A hypothesis strategy assembles arbitrary valid segment sequences mixing all
profile types; the invariants below must hold for *any* such schedule, which
exercises the segment algebra far beyond what the algorithms produce.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PowerLaw
from repro.core.kernels import decay_time_to_zero
from repro.core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    IdleSegment,
    Schedule,
)

ALPHA = 3.0
POWER = PowerLaw(ALPHA)


@st.composite
def segments_lists(draw, max_segments: int = 6):
    t = 0.0
    out = []
    n = draw(st.integers(min_value=1, max_value=max_segments))
    for k in range(n):
        gap = draw(st.floats(min_value=0.0, max_value=1.0))
        dur = draw(st.floats(min_value=0.05, max_value=2.0))
        kind = draw(st.sampled_from(["idle", "const", "decay", "growth"]))
        t0, t1 = t + gap, t + gap + dur
        job = draw(st.integers(min_value=0, max_value=3))
        if kind == "idle":
            out.append(IdleSegment(t0, t1, None))
        elif kind == "const":
            speed = draw(st.floats(min_value=0.0, max_value=5.0))
            out.append(ConstantSegment(t0, t1, job, speed))
        elif kind == "decay":
            x0 = draw(st.floats(min_value=0.5, max_value=20.0))
            rho = draw(st.floats(min_value=0.2, max_value=4.0))
            # Keep the decay alive through the whole segment.
            max_dur = 0.95 * decay_time_to_zero(x0, rho, ALPHA)
            t1 = t0 + min(dur, max_dur)
            out.append(DecaySegment(t0, t1, job, x0, rho, ALPHA))
        else:
            x0 = draw(st.floats(min_value=0.0, max_value=10.0))
            rho = draw(st.floats(min_value=0.2, max_value=4.0))
            out.append(GrowthSegment(t0, t1, job, x0, rho, ALPHA))
        t = t1
    return out


class TestScheduleInvariants:
    @given(segments_lists())
    @settings(max_examples=60, deadline=None)
    def test_volume_additivity(self, segs):
        """volume_until at the midpoint plus the rest equals the total."""
        for seg in segs:
            mid = seg.duration / 2
            a = seg.volume_until(mid)
            total = seg.volume()
            assert 0 <= a <= total * (1 + 1e-9) + 1e-12
            # Second half = total - first half, via the absolute accessor.
            assert seg.volume_until(seg.duration) == pytest.approx(total, rel=1e-9, abs=1e-12)

    @given(segments_lists())
    @settings(max_examples=60, deadline=None)
    def test_flow_integral_monotone_convexity(self, segs):
        """flow_integral is nondecreasing and bounded by volume * tau."""
        for seg in segs:
            f_half = seg.flow_integral(seg.duration / 2)
            f_full = seg.flow_integral(seg.duration)
            assert -1e-12 <= f_half <= f_full + 1e-12
            assert f_full <= seg.volume() * seg.duration * (1 + 1e-9) + 1e-12

    @given(segments_lists())
    @settings(max_examples=60, deadline=None)
    def test_energy_nonnegative_and_consistent(self, segs):
        for seg in segs:
            assert seg.energy(POWER) >= -1e-12

    @given(segments_lists())
    @settings(max_examples=60, deadline=None)
    def test_speed_nonnegative_within_bounds(self, segs):
        for seg in segs:
            for frac in (0.0, 0.3, 1.0):
                s = seg.speed_at(seg.t0 + frac * seg.duration)
                assert s >= 0.0

    @given(segments_lists())
    @settings(max_examples=60, deadline=None)
    def test_subsegment_partition_preserves_volume(self, segs):
        """Splitting a segment at any point conserves total volume."""
        for seg in segs:
            cut = seg.duration * 0.37
            a = seg.subsegment(0.0, cut)
            b = seg.subsegment(cut, seg.duration)
            assert a.volume() + b.volume() == pytest.approx(
                seg.volume(), rel=1e-9, abs=1e-12
            )

    @given(segments_lists())
    @settings(max_examples=60, deadline=None)
    def test_subsegment_partition_preserves_energy(self, segs):
        for seg in segs:
            cut = seg.duration * 0.61
            a = seg.subsegment(0.0, cut)
            b = seg.subsegment(cut, seg.duration)
            assert a.energy(POWER) + b.energy(POWER) == pytest.approx(
                seg.energy(POWER), rel=1e-9, abs=1e-12
            )

    @given(segments_lists())
    @settings(max_examples=40, deadline=None)
    def test_schedule_assembles_and_queries(self, segs):
        sched = Schedule(segs)
        end = sched.end_time
        assert end >= 0
        # speed_at never raises inside the span and is 0 in gaps.
        for k in range(5):
            t = end * k / 4 if end > 0 else 0.0
            assert sched.speed_at(t) >= 0.0

    @given(segments_lists())
    @settings(max_examples=40, deadline=None)
    def test_time_to_volume_inverts_volume_until(self, segs):
        for seg in segs:
            v = seg.volume()
            if v <= 1e-12:
                continue
            target = v * 0.5
            tau = seg.time_to_volume(target)
            assert seg.volume_until(tau) == pytest.approx(target, rel=1e-6, abs=1e-12)
