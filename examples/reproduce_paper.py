#!/usr/bin/env python3
"""One-command tour of the full reproduction.

Runs a condensed version of every experiment (Table 1, Figures 1–3, the §3
identities, the §6 parallel results and lower bound, the §7 observation) and
prints the paper-vs-measured summary.  The benchmark harness
(`pytest benchmarks/ --benchmark-only`) runs the full-size versions; this
script is the human-friendly walkthrough.

Usage::

    python examples/reproduce_paper.py [--alpha 3.0]
"""

from __future__ import annotations

import argparse

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import (
    build_table1,
    format_ascii_chart,
    format_table,
    power_curve,
    preemption_intervals,
    render_table1,
)
from repro.core import evaluate
from repro.parallel import adversarial_ratio, simulate_c_par, simulate_nc_par
from repro.workloads import geometric_density_instance, random_instance


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--alpha", type=float, default=3.0)
    args = parser.parse_args()
    alpha = args.alpha
    power = PowerLaw(alpha)

    section("Figure 1 — single-job power curves (C decays, NC is the reverse)")
    inst1 = Instance([Job(0, 0.0, 4.0)])
    c1 = simulate_clairvoyant(inst1, power)
    n1 = simulate_nc_uniform(inst1, power)
    cc = power_curve(c1.schedule, power, samples=64, label="C")
    cn = power_curve(n1.schedule, power, samples=64, label="NC")
    print(format_ascii_chart([(cc.label, cc.times, cc.values), (cn.label, cn.times, cn.values)]))
    rc, rn = evaluate(c1.schedule, inst1, power), evaluate(n1.schedule, inst1, power)
    print(f"\nC: flow/energy = {rc.fractional_flow / rc.energy:.9f}  (paper: 1)")
    print(
        f"NC: flow/energy = {rn.fractional_flow / rn.energy:.9f}"
        f"  (paper: 1/(1-1/alpha) = {1 / (1 - 1 / alpha):.9f})"
    )

    section("§3 identities on a random stream (Lemmas 3 and 4)")
    inst = random_instance(20, seed=42)
    rep_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
    rep_n = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
    print(f"energy:  C = {rep_c.energy:.6f}   NC = {rep_n.energy:.6f}   (equal)")
    print(
        f"flow:    C = {rep_c.fractional_flow:.6f}   NC = {rep_n.fractional_flow:.6f}"
        f"   ratio = {rep_n.fractional_flow / rep_c.fractional_flow:.9f}"
        f"   (paper: {1 / (1 - 1 / alpha):.9f})"
    )

    section("Figure 3 — preemption intervals of a low-density job under C")
    inst3 = Instance(
        [Job(0, 0.0, 6.0, 1.0), Job(1, 0.6, 0.8, 9.0), Job(2, 2.8, 1.5, 9.0)]
    )
    run3 = simulate_clairvoyant(inst3, power)
    for iv in preemption_intervals(run3, 0):
        print(
            f"  interval {iv.index}: [{iv.start:.3f}, {iv.end:.3f}]"
            f"  volume {iv.volume:.3f}  W-bar {iv.weight_before:.3f}"
        )

    section("§6 — parallel machines (Lemmas 20-22) and the dispatch lower bound")
    instp = random_instance(24, seed=7, rate=2.0, volume="bimodal")
    ncp = simulate_nc_par(instp, power, 3)
    cp = simulate_c_par(instp, power, 3)
    print(f"Lemma 20 (same assignments): {ncp.assignments == cp.assignments}")
    rnp, rcp = ncp.report(), cp.report()
    print(f"Lemma 21 (energy ratio):     {rnp.energy / rcp.energy:.9f}")
    print(f"Lemma 22 (flow ratio):       {rnp.fractional_flow / rcp.fractional_flow:.9f}")
    rows = [[k, adversarial_ratio(k, power).ratio, k ** (1 - 1 / alpha)] for k in (2, 4, 8)]
    print(format_table(["k", "adversarial ratio", "k^(1-1/alpha)"], rows, floatfmt=".3f"))

    section("§7 — geometric densities on one machine cost only a constant")
    for l in (2, 4, 8):
        g = geometric_density_instance(l, rho=5.0, unit_cost=1.0, alpha=alpha)
        cost = evaluate(simulate_clairvoyant(g, power).schedule, g, power).fractional_objective
        print(f"  l = {l}: cost / (l*c) = {cost / l:.3f}   (paper's cap: 4)")

    section("Table 1 (condensed suite)")
    rows = build_table1(alpha, uniform_n=10, nonuniform_n=5, seeds=(1,), slots=200,
                        iterations=700, max_step=3e-2)
    print(render_table1(rows, alpha))


if __name__ == "__main__":
    main()
