"""The paper's algorithms: the clairvoyant baseline (Algorithm C), the
non-clairvoyant algorithms for uniform (§3) and non-uniform (§4) densities,
the fractional-to-integral black-box reduction (§5), density rounding, and
non-competitive baselines for context."""

from .baselines import (
    simulate_active_count,
    simulate_constant_speed_fifo,
    simulate_round_robin,
)
from .clairvoyant import ClairvoyantPolicy, ClairvoyantRun, hdf_key, simulate_clairvoyant
from .density_rounding import (
    density_class_index,
    density_classes,
    round_density_down,
    rounded_instance,
)
from .integral_conversion import IntegralConversion, convert, to_integral_schedule
from .nc_general import NCGeneralPolicy, NCGeneralRun, eta_threshold, simulate_nc_general
from .nc_uniform import NCUniformPolicy, NCUniformRun, simulate_nc_uniform

__all__ = [
    "ClairvoyantRun",
    "ClairvoyantPolicy",
    "simulate_clairvoyant",
    "hdf_key",
    "NCUniformRun",
    "NCUniformPolicy",
    "simulate_nc_uniform",
    "NCGeneralRun",
    "NCGeneralPolicy",
    "simulate_nc_general",
    "eta_threshold",
    "round_density_down",
    "density_class_index",
    "density_classes",
    "rounded_instance",
    "to_integral_schedule",
    "IntegralConversion",
    "convert",
    "simulate_constant_speed_fifo",
    "simulate_active_count",
    "simulate_round_robin",
]
