"""Scheduling-as-a-service: the paper's algorithms behind an async API.

The non-clairvoyant model made operational — multi-tenant sessions accept
jobs as online arrivals through a bounded (backpressured) queue and answer
live speed/schedule/metrics/Gantt queries, verified Lemma 3/4 reports, and
sharded parallel-machine campaigns.  See ``docs/service.md``.

Requires the ``service`` extra (pydantic); the HTTP layer itself is
dependency-free ASGI (:mod:`repro.service.asgi`), so uvicorn/FastAPI remain
strictly optional.
"""

from __future__ import annotations

from .app import create_app
from .asgi import App, ClientResponse, HTTPError, Request, Response, TestClient, serve
from .sessions import Backpressure, Campaign, Session, SessionClosed, SessionManager

__all__ = [
    "create_app",
    "App",
    "ClientResponse",
    "HTTPError",
    "Request",
    "Response",
    "TestClient",
    "serve",
    "Backpressure",
    "Campaign",
    "Session",
    "SessionClosed",
    "SessionManager",
]
