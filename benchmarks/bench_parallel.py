"""E7 — §6: identical parallel machines without immediate dispatch.

Per machine count k: verifies Lemma 20 (NC-PAR's assignment == C-PAR's greedy
immediate dispatch), Lemma 21 (equal energy), Lemma 22 (flow ratio exactly
1/(1-1/alpha)), and measures NC-PAR's ratio against the pooled-machine OPT
lower bound — it stays O(alpha + 1/(alpha-1)) as Theorem 17 promises.
"""

from __future__ import annotations

from repro import PowerLaw
from repro.analysis import format_table
from repro.offline import opt_fractional_lower_bound
from repro.parallel import simulate_c_par, simulate_nc_par
from repro.workloads import random_instance

from conftest import emit

ALPHA = 3.0
KS = (1, 2, 4, 8)


def _run():
    power = PowerLaw(ALPHA)
    inst = random_instance(32, seed=11, rate=2.0, volume="bimodal")
    rows = []
    for k in KS:
        c = simulate_c_par(inst, power, k)
        n = simulate_nc_par(inst, power, k)
        rc, rn = c.report(), n.report()
        lb = opt_fractional_lower_bound(inst, power, machines=k, slots=250, iterations=1000)
        rows.append(
            [
                k,
                c.assignments == n.assignments,
                rn.energy / rc.energy,
                rn.fractional_flow / rc.fractional_flow,
                1 / (1 - 1 / ALPHA),
                rn.fractional_objective / lb.value,
                rn.integral_flow / rn.fractional_flow,
            ]
        )
    return rows


def test_parallel_machines(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        [
            "k",
            "Lemma 20 (same assignment)",
            "E ratio",
            "F ratio",
            "theory F ratio",
            "NC-PAR vs OPT_lb",
            "F_int/F_frac",
        ],
        rows,
        title=f"§6 parallel machines, 32 bimodal jobs, alpha = {ALPHA}",
        floatfmt=".4f",
    )
    emit("parallel_machines", table)
    for k, same, e_ratio, f_ratio, f_theory, ratio, int_frac in rows:
        assert same
        assert abs(e_ratio - 1.0) < 1e-7
        assert abs(f_ratio - f_theory) < 1e-6 * f_theory
        # Theorem 17: O(alpha + 1/(alpha-1)); generous constant of 4x.
        assert ratio <= 4 * (ALPHA + 1 / (ALPHA - 1))
        # Theorem 17's integral extension: Lemma 8 per machine.
        assert int_frac <= (2 - 1 / ALPHA) + 1e-9
