"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch package failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidPowerFunctionError",
    "ScheduleError",
    "ClairvoyanceViolationError",
    "SimulationError",
    "ConvergenceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidInstanceError(ReproError):
    """An instance (set of jobs) failed validation."""


class InvalidPowerFunctionError(ReproError):
    """A power function failed validation (non-convex, decreasing, ...)."""


class ScheduleError(ReproError):
    """A schedule is malformed or inconsistent with its instance."""


class ClairvoyanceViolationError(ReproError):
    """A non-clairvoyant algorithm attempted to read a hidden job volume."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ConvergenceError(ReproError):
    """An iterative numerical routine failed to converge."""
