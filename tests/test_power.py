"""Unit and property tests for repro.core.power."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidPowerFunctionError
from repro.core.power import CUBE_LAW, PowerLaw, TabulatedPower

from conftest import alphas, positives


class TestPowerLaw:
    def test_cube_law_values(self):
        assert CUBE_LAW.power(2.0) == 8.0
        assert CUBE_LAW.speed(8.0) == pytest.approx(2.0)
        assert CUBE_LAW.marginal_power(2.0) == pytest.approx(12.0)

    def test_power_zero(self):
        assert PowerLaw(2.5).power(0.0) == 0.0

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(InvalidPowerFunctionError):
            PowerLaw(1.0)
        with pytest.raises(InvalidPowerFunctionError):
            PowerLaw(0.5)

    def test_rejects_nonfinite_alpha(self):
        with pytest.raises(InvalidPowerFunctionError):
            PowerLaw(math.inf)
        with pytest.raises(InvalidPowerFunctionError):
            PowerLaw(math.nan)

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            CUBE_LAW.power(-1.0)
        with pytest.raises(ValueError):
            CUBE_LAW.speed(-1.0)
        with pytest.raises(ValueError):
            CUBE_LAW.marginal_power(-0.1)

    def test_beta_precomputed(self):
        assert PowerLaw(3.0).beta == pytest.approx(2.0 / 3.0)

    def test_equality_and_hash(self):
        assert PowerLaw(3.0) == PowerLaw(3.0)
        assert PowerLaw(3.0) != PowerLaw(2.0)
        assert hash(PowerLaw(3.0)) == hash(PowerLaw(3.0))

    def test_repr(self):
        assert "3.0" in repr(PowerLaw(3.0))

    def test_power_array_vectorised(self):
        speeds = np.array([0.0, 1.0, 2.0])
        np.testing.assert_allclose(CUBE_LAW.power_array(speeds), [0.0, 1.0, 8.0])

    def test_validate_passes(self):
        PowerLaw(2.0).validate()
        PowerLaw(5.5).validate()

    @given(alphas, positives)
    @settings(max_examples=60)
    def test_inverse_roundtrip(self, alpha, s):
        p = PowerLaw(alpha)
        assert p.speed(p.power(s)) == pytest.approx(s, rel=1e-9)

    @given(alphas, positives, positives)
    @settings(max_examples=60)
    def test_convexity_midpoint(self, alpha, a, b):
        p = PowerLaw(alpha)
        assert p.power((a + b) / 2) <= (p.power(a) + p.power(b)) / 2 + 1e-9 * (
            p.power(a) + p.power(b)
        )

    @given(alphas, positives)
    @settings(max_examples=40)
    def test_marginal_matches_finite_difference(self, alpha, s):
        p = PowerLaw(alpha)
        h = max(s * 1e-6, 1e-9)
        fd = (p.power(s + h) - p.power(max(s - h, 0.0))) / (h + min(s, h))
        assert p.marginal_power(s) == pytest.approx(fd, rel=1e-3)


class TestTabulatedPower:
    def make(self) -> TabulatedPower:
        speeds = [0.0, 1.0, 2.0, 3.0]
        powers = [0.0, 1.0, 8.0, 27.0]
        return TabulatedPower(speeds, powers)

    def test_interpolation_hits_samples(self):
        t = self.make()
        assert t.power(2.0) == pytest.approx(8.0)
        assert t.speed(8.0) == pytest.approx(2.0)

    def test_interpolation_between_samples(self):
        t = self.make()
        assert t.power(1.5) == pytest.approx((1.0 + 8.0) / 2)

    def test_extrapolates_with_final_slope(self):
        t = self.make()
        assert t.power(4.0) == pytest.approx(27.0 + 19.0)
        assert t.speed(27.0 + 19.0) == pytest.approx(4.0)

    def test_marginal_power_piecewise(self):
        t = self.make()
        assert t.marginal_power(0.5) == pytest.approx(1.0)
        assert t.marginal_power(2.5) == pytest.approx(19.0)
        assert t.marginal_power(10.0) == pytest.approx(19.0)

    def test_rejects_nonconvex(self):
        with pytest.raises(InvalidPowerFunctionError):
            TabulatedPower([0.0, 1.0, 2.0], [0.0, 5.0, 6.0])

    def test_rejects_decreasing_power(self):
        with pytest.raises(InvalidPowerFunctionError):
            TabulatedPower([0.0, 1.0, 2.0], [0.0, 2.0, 1.0])

    def test_rejects_nonzero_origin(self):
        with pytest.raises(InvalidPowerFunctionError):
            TabulatedPower([0.5, 1.0], [0.5, 1.0])

    def test_rejects_unsorted_speeds(self):
        with pytest.raises(InvalidPowerFunctionError):
            TabulatedPower([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidPowerFunctionError):
            TabulatedPower([0.0, 1.0, 2.0], [0.0, 1.0])

    def test_saturating_curve_is_not_convex(self):
        # Flat-after-rising violates convexity (P(0)=0 forces slopes to be
        # non-decreasing), so construction must fail.
        with pytest.raises(InvalidPowerFunctionError):
            TabulatedPower([0.0, 1.0, 2.0], [0.0, 1.0, 1.0])

    def test_initial_flat_stretch_inverse_picks_free_speed(self):
        # Zero slope at the start is convex; the inverse of power 0 is the
        # *maximal* speed available for free — the scheduling-relevant choice
        # (the power-equals-weight rule should never run slower for the same
        # energy).
        t = TabulatedPower([0.0, 1.0, 2.0], [0.0, 0.0, 1.0])
        assert t.speed(0.0) == pytest.approx(1.0)
        assert t.power(0.5) == pytest.approx(0.0)
        assert t.speed(0.5) == pytest.approx(1.5)

    def test_validate_passes(self):
        self.make().validate(probe_max=3.0)

    def test_rejects_negative_queries(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.power(-1.0)
        with pytest.raises(ValueError):
            t.speed(-1.0)
        with pytest.raises(ValueError):
            t.marginal_power(-1.0)
