"""Serialization: save and load instances, schedules and cost reports.

Experiment artifacts should be reproducible *and* archivable: the bench
harness stores text renderings, and this module provides the structured
counterpart — JSON-friendly dictionaries with exact round-tripping of the
analytic segment parameters (so a re-loaded schedule evaluates to bit-equal
costs).
"""

from __future__ import annotations

import json
from typing import Any

from .core.errors import ScheduleError
from .core.job import Instance, Job
from .core.metrics import CostReport
from .core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    IdleSegment,
    ScaledSegment,
    Schedule,
    Segment,
)

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "report_to_dict",
    "dump_run",
    "load_run",
]

_SCHEMA_VERSION = 1


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    return {
        "schema": _SCHEMA_VERSION,
        "jobs": [
            {"id": j.job_id, "release": j.release, "volume": j.volume, "density": j.density}
            for j in instance
        ],
    }


def instance_from_dict(data: dict[str, Any]) -> Instance:
    return Instance(
        Job(item["id"], item["release"], item["volume"], item.get("density", 1.0))
        for item in data["jobs"]
    )


def _segment_to_dict(seg: Segment) -> dict[str, Any]:
    base: dict[str, Any] = {"t0": seg.t0, "t1": seg.t1, "job": seg.job_id}
    if isinstance(seg, IdleSegment):
        base["kind"] = "idle"
    elif isinstance(seg, ConstantSegment):
        base["kind"] = "constant"
        base["speed"] = seg.speed
    elif isinstance(seg, DecaySegment):
        base["kind"] = "decay"
        base.update(x0=seg.x0, rho=seg.rho, alpha=seg.alpha)
    elif isinstance(seg, GrowthSegment):
        base["kind"] = "growth"
        base.update(x0=seg.x0, rho=seg.rho, alpha=seg.alpha)
    elif isinstance(seg, ScaledSegment):
        base["kind"] = "scaled"
        base["factor"] = seg.factor
        base["base"] = _segment_to_dict(seg.base)
    else:
        raise ScheduleError(f"cannot serialise segment type {type(seg).__name__}")
    return base


def _segment_from_dict(data: dict[str, Any]) -> Segment:
    kind = data["kind"]
    t0, t1, job = data["t0"], data["t1"], data["job"]
    if kind == "idle":
        return IdleSegment(t0, t1, None)
    if kind == "constant":
        return ConstantSegment(t0, t1, job, data["speed"])
    if kind == "decay":
        return DecaySegment(t0, t1, job, data["x0"], data["rho"], data["alpha"])
    if kind == "growth":
        return GrowthSegment(t0, t1, job, data["x0"], data["rho"], data["alpha"])
    if kind == "scaled":
        return ScaledSegment(t0, t1, job, _segment_from_dict(data["base"]), data["factor"])
    raise ScheduleError(f"unknown segment kind {kind!r}")


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "schema": _SCHEMA_VERSION,
        "segments": [_segment_to_dict(s) for s in schedule],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    return Schedule(_segment_from_dict(s) for s in data["segments"])


def report_to_dict(report: CostReport) -> dict[str, Any]:
    """One-way export of a cost report (reports are derived data; reload by
    re-evaluating the schedule)."""
    return {
        "schema": _SCHEMA_VERSION,
        "energy": report.energy,
        "fractional_flow": report.fractional_flow,
        "integral_flow": report.integral_flow,
        "fractional_objective": report.fractional_objective,
        "integral_objective": report.integral_objective,
        "completion_times": {str(k): v for k, v in report.completion_times.items()},
        "fractional_flow_by_job": {str(k): v for k, v in report.fractional_flow_by_job.items()},
        "integral_flow_by_job": {str(k): v for k, v in report.integral_flow_by_job.items()},
    }


def dump_run(path: str, instance: Instance, schedule: Schedule, *, meta: dict | None = None) -> None:
    """Write an (instance, schedule) pair as JSON."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "meta": meta or {},
        "instance": instance_to_dict(instance),
        "schedule": schedule_to_dict(schedule),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)


def load_run(path: str) -> tuple[Instance, Schedule, dict]:
    """Read an (instance, schedule, meta) triple written by :func:`dump_run`."""
    with open(path) as fh:
        payload = json.load(fh)
    return (
        instance_from_dict(payload["instance"]),
        schedule_from_dict(payload["schedule"]),
        payload.get("meta", {}),
    )
