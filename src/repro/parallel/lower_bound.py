"""The §6 immediate-dispatch lower bound: ``Ω(k**(1-1/alpha))``.

Construction: release ``k**2`` unit-density jobs at time 0.  A deterministic
volume-oblivious dispatcher cannot distinguish them, so some machine receives
at least ``k`` jobs.  The adversary then declares those ``k`` jobs *heavy*
(volume ``heavy``) and the rest negligible (volume ``light``).  The
dispatcher's cost is dominated by one machine doing ``k`` heavy jobs; the
benchmark schedule puts one heavy job per machine.  Under ``P = s**alpha``
the cost of processing weight ``W`` on one machine scales as ``W**(2-1/alpha)``,
so the ratio grows as ``k**(2-1/alpha)/k = k**(1-1/alpha)``.

:func:`adversarial_ratio` builds the instance, plays the adversary against a
given dispatch rule, evaluates both the dispatcher's schedule and the
benchmark schedule *exactly*, and returns their ratio — a certified lower
bound on the rule's competitive ratio (the benchmark is feasible, hence
costs at least OPT).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.job import Instance, Job
from ..core.power import PowerLaw
from .cluster import ClusterRun
from .dispatch import DISPATCH_RULES, DispatchRule, simulate_immediate_dispatch

__all__ = ["AdversaryOutcome", "adversarial_instance", "adversarial_ratio"]


@dataclass(frozen=True)
class AdversaryOutcome:
    """One round of the lower-bound game."""

    machines: int
    instance: Instance
    algorithm_cost: float
    benchmark_cost: float
    loaded_machine: int
    heavy_on_loaded: int

    @property
    def ratio(self) -> float:
        """Certified lower bound on the dispatcher's competitive ratio."""
        return self.algorithm_cost / self.benchmark_cost


def adversarial_instance(
    machines: int, assignment: list[int], *, heavy: float = 1.0, light: float = 1e-6
) -> tuple[Instance, int]:
    """Given the dispatcher's assignment of ``machines**2`` indistinguishable
    jobs, make the jobs on the most-loaded machine heavy.  Returns the
    instance and the targeted machine."""
    counts = Counter(assignment)
    loaded = max(range(machines), key=lambda i: (counts.get(i, 0), -i))
    jobs = []
    heavy_left = machines  # the adversary only needs k heavy jobs
    for jid, m in enumerate(assignment):
        if m == loaded and heavy_left > 0:
            jobs.append(Job(jid, 0.0, heavy, 1.0))
            heavy_left -= 1
        else:
            jobs.append(Job(jid, 0.0, light, 1.0))
    return Instance(jobs), loaded


def adversarial_ratio(
    machines: int,
    power: PowerLaw,
    rule: str | DispatchRule = "least_count",
    *,
    heavy: float = 1.0,
    light: float = 1e-6,
    objective: str = "fractional",
) -> AdversaryOutcome:
    """Play the §6 adversary against ``rule`` on ``machines`` machines."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    rule_fn = DISPATCH_RULES[rule] if isinstance(rule, str) else rule
    n = machines * machines
    # The dispatcher sees only ids/releases; volumes are chosen afterwards.
    assignment = rule_fn(machines, list(range(n)))
    instance, loaded = adversarial_instance(machines, assignment, heavy=heavy, light=light)

    algo = simulate_immediate_dispatch(instance, power, machines, rule_fn, per_machine="C")
    algo_report = algo.report()

    # Benchmark: one heavy job per machine, light jobs spread round-robin.
    heavy_ids = [j.job_id for j in instance if j.volume == heavy]
    light_ids = [j.job_id for j in instance if j.volume != heavy]
    bench_assignment: dict[int, list[int]] = {i: [] for i in range(machines)}
    for i, jid in enumerate(heavy_ids):
        bench_assignment[i % machines].append(jid)
    for i, jid in enumerate(light_ids):
        bench_assignment[i % machines].append(jid)
    from ..algorithms.clairvoyant import simulate_clairvoyant

    schedules = {}
    for i in range(machines):
        sub = instance.subset(bench_assignment[i])
        if sub is not None:
            schedules[i] = simulate_clairvoyant(sub, power).schedule
    bench = ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=bench_assignment,
        schedules=schedules,
    )
    bench_report = bench.report()

    if objective == "fractional":
        a_cost, b_cost = algo_report.fractional_objective, bench_report.fractional_objective
    elif objective == "integral":
        a_cost, b_cost = algo_report.integral_objective, bench_report.integral_objective
    else:
        raise ValueError(f"unknown objective {objective!r}")
    heavy_on_loaded = sum(
        1 for jid in algo.assignments[loaded] if instance[jid].volume == heavy
    )
    return AdversaryOutcome(
        machines=machines,
        instance=instance,
        algorithm_cost=a_cost,
        benchmark_cost=b_cost,
        loaded_machine=loaded,
        heavy_on_loaded=heavy_on_loaded,
    )
