"""Supervised multiprocessing worker pool for sharded simulation.

:class:`WorkerPool` runs a batch of picklable *shard tasks* on a set of
worker processes under coordinator-side supervision:

* **liveness** — every worker runs a heartbeat thread; the coordinator
  tracks the last beat and the process itself, so a SIGKILLed or wedged
  worker is detected within one poll interval (``worker_lost``);
* **hang detection** — a shard whose result has not arrived within
  ``shard_timeout`` of its ``started`` acknowledgement gets its worker
  killed and the shard re-dispatched (a heartbeat proves the *process* is
  alive, not that the *shard* is making progress);
* **bounded retry** — a lost shard is re-dispatched to a surviving worker
  with exponential backoff (``shard_redispatch``) at most
  ``max_redispatch`` extra times; lost workers are respawned up to
  ``max_respawns`` times;
* **graceful degradation** — when the pool is exhausted (no live workers
  and no respawn budget, or a shard out of redispatch budget) the remaining
  shards are computed serially in the coordinator (``pool_degraded``), so a
  sharded run can always fall back to the exact serial path.

Every lifecycle transition is emitted as a typed trace event through the
attached :class:`~repro.core.shadow.SimulationContext` (``shard_dispatch``,
``worker_heartbeat``, ``worker_lost``, ``shard_redispatch``,
``pool_degraded``), with the pool's elapsed wall-clock seconds as the
event's ``sim_time`` — monotone per stream, satisfying the ordering
contract of :mod:`repro.core.tracing`.

Process-level faults (:mod:`repro.faults.plan`, kinds ``worker_kill`` and
``shard_hang``) are realised *here*: the coordinator SIGKILLs the worker
that acknowledged the n-th dispatched shard, or injects a sleep into the
n-th dispatched shard's payload.  Both spend the shared
:class:`~repro.faults.injector.FaultInjector` budget, so the re-dispatched
attempt runs clean — the transient-fault model, one level up the stack.

Transport safety — the part that is easy to get fatally wrong: every
worker owns **private** task and result queues.  A ``multiprocessing``
queue's reader holds an inter-process lock while blocked in ``get``, so a
SIGKILL delivered to a worker waiting on a *shared* task queue would leave
that lock held by a corpse and deadlock every other reader.  With
single-reader, single-writer queues per worker, a dying worker can only
corrupt state nobody else will ever touch; the coordinator simply reaps it
and re-dispatches its shard.
"""

from __future__ import annotations

import importlib
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from queue import Empty
from typing import TYPE_CHECKING, Any, Callable

from ..core.shadow import SimulationContext

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

    from ..faults.injector import FaultInjector

__all__ = ["PoolPolicy", "PoolStats", "WorkerPool"]

#: Sleep injected into a shard payload by a ``shard_hang`` fault — long
#: enough that only the pool's shard timeout can end the shard.
_HANG_SECONDS = 3600.0

#: Payload key carrying the injected hang; consumed by the worker, stripped
#: by the coordinator on re-dispatch.
_HANG_KEY = "_hang_s"


@dataclass(frozen=True)
class PoolPolicy:
    """Supervision parameters of a :class:`WorkerPool`.

    ``heartbeat_timeout`` bounds how stale a worker's last message may be
    before it is declared lost; ``shard_timeout`` bounds how long one shard
    may run after its ``started`` acknowledgement.  ``max_redispatch`` is a
    *per-shard* retry budget (extra attempts beyond the first);
    ``max_respawns`` a *pool-wide* replacement budget.  Backoff before a
    re-dispatch is bounded exponential:
    ``min(backoff_base * backoff_factor**k, max_backoff)``.
    """

    workers: int = 2
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 10.0
    shard_timeout: float = 60.0
    max_redispatch: int = 3
    max_respawns: int = 4
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    max_backoff: float = 0.5
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be > 0")
        if self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0")


@dataclass
class PoolStats:
    """Lifecycle counts of one :meth:`WorkerPool.run` call."""

    dispatched: int = 0
    completed: int = 0
    redispatched: int = 0
    workers_lost: int = 0
    workers_spawned: int = 0
    heartbeats: int = 0
    degraded: bool = False
    #: shards computed in the coordinator after degradation
    serial_fallback: int = 0
    #: ``(worker, reason)`` per lost worker, in detection order
    losses: list[tuple[str, str]] = field(default_factory=list)


def _resolve(module: str, func: str) -> Callable[[dict[str, Any]], Any]:
    fn = getattr(importlib.import_module(module), func)
    return fn  # type: ignore[no-any-return]


def _worker_main(
    worker_id: str,
    task_queue: "MPQueue[Any]",
    result_queue: "MPQueue[Any]",
    heartbeat_interval: float,
) -> None:
    """Worker loop: acknowledge, compute, answer — with a heartbeat thread.

    Runs in the child process; both queues are private to this worker.  Any
    exception inside a shard computation is reported as an ``error`` message
    (the coordinator decides whether to retry or degrade); the loop itself
    only ends on the ``None`` sentinel.
    """
    import threading

    stop = threading.Event()

    def beat() -> None:
        n = 0
        while not stop.wait(heartbeat_interval):
            n += 1
            try:
                result_queue.put(("heartbeat", worker_id, n, None))
            except Exception:
                return

    threading.Thread(target=beat, daemon=True, name=f"{worker_id}-heartbeat").start()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                return
            task_id, module, func, payload = task
            try:
                result_queue.put(("started", worker_id, task_id, None))
                hang = payload.get(_HANG_KEY) if isinstance(payload, dict) else None
                if hang:
                    time.sleep(float(hang))
                result = _resolve(module, func)(payload)
                result_queue.put(("result", worker_id, task_id, result))
            except BaseException as err:  # noqa: BLE001 — reported, not hidden
                result_queue.put(
                    ("error", worker_id, task_id, f"{type(err).__name__}: {err}")
                )
    finally:
        stop.set()


def _mp_context() -> "BaseContext":
    # fork is preferred: worker start is milliseconds and the child inherits
    # sys.path, so tests need no install step.  spawn is the portable
    # fallback (PYTHONPATH is inherited through the environment).
    if "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context("spawn")


class _Worker:
    """Coordinator-side record of one worker process and its private queues."""

    __slots__ = ("name", "process", "task_queue", "result_queue", "last_seen", "busy", "lost")

    def __init__(
        self,
        name: str,
        process: "BaseProcess",
        task_queue: "MPQueue[Any]",
        result_queue: "MPQueue[Any]",
    ) -> None:
        self.name = name
        self.process = process
        self.task_queue = task_queue
        self.result_queue = result_queue
        self.last_seen = time.monotonic()
        self.busy: Any = None  # task id currently assigned, or None
        self.lost = False

    @property
    def alive(self) -> bool:
        return not self.lost and self.process.is_alive()


class WorkerPool:
    """One-shot supervised map of shard tasks over worker processes.

    ``injector`` — if given — drives the process-level fault kinds:
    ``worker_kill`` (SIGKILL the worker acknowledging the n-th dispatch) and
    ``shard_hang`` (wedge the n-th dispatched shard).  Budgets are spent at
    the moment the fault is realised, so re-dispatched attempts run clean.
    """

    def __init__(
        self,
        policy: PoolPolicy | None = None,
        *,
        context: SimulationContext | None = None,
        injector: "FaultInjector | None" = None,
        component: str = "pool",
    ) -> None:
        self.policy = policy if policy is not None else PoolPolicy()
        self.context = context
        self.injector = injector
        self.component = component
        self.stats = PoolStats()
        self._t0 = time.monotonic()

    # -- events ---------------------------------------------------------------

    def _emit(self, kind: str, **payload: Any) -> None:
        if self.context is not None:
            self.context.emit(
                kind, time.monotonic() - self._t0, self.component, **payload
            )

    # -- fault hooks ----------------------------------------------------------

    def _kill_ordinals(self) -> set[int]:
        if self.injector is None:
            return set()
        return {
            max(spec.after_calls, 1)
            for spec in self.injector.armed_specs("worker_kill")
        }

    def _hang_ordinal_due(self, ordinal: int) -> bool:
        if self.injector is None:
            return False
        return any(
            max(spec.after_calls, 1) == ordinal
            for spec in self.injector.armed_specs("shard_hang")
        )

    # -- the supervised map ---------------------------------------------------

    def run(
        self,
        tasks: list[tuple[Any, dict[str, Any]]],
        module: str,
        func: str,
    ) -> dict[Any, Any]:
        """Run every ``(task_id, payload)`` through ``module:func`` and return
        ``{task_id: result}``.

        Results are complete by construction: any shard the pool cannot
        finish (lost workers, spent budgets) is computed serially in the
        coordinator after a ``pool_degraded`` event.  A deterministic error
        inside a shard eventually re-raises *in the coordinator* with its
        structured type intact, via the same serial fallback.
        """
        if not tasks:
            return {}
        policy = self.policy
        stats = self.stats
        ctx = _mp_context()
        workers: dict[str, _Worker] = {}
        results: dict[Any, Any] = {}
        payloads: dict[Any, dict[str, Any]] = {task_id: p for task_id, p in tasks}
        attempts: dict[Any, int] = {task_id: 0 for task_id, _ in tasks}
        #: shards waiting for a worker (earliest-dispatch times in not_before)
        pending: deque[Any] = deque(task_id for task_id, _ in tasks)
        not_before: dict[Any, float] = {}
        started_at: dict[Any, float] = {}
        dispatch_ordinal = 0
        ordinal_of: dict[Any, int] = {}
        pending_kills = self._kill_ordinals()
        spawned = 0
        outstanding = {task_id for task_id, _ in tasks}
        degraded_reason: str | None = None

        def spawn_worker() -> None:
            nonlocal spawned
            name = f"w{spawned}"
            spawned += 1
            task_queue: "MPQueue[Any]" = ctx.Queue()
            result_queue: "MPQueue[Any]" = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(name, task_queue, result_queue, policy.heartbeat_interval),
                daemon=True,
                name=f"repro-pool-{name}",
            )
            process.start()
            workers[name] = _Worker(name, process, task_queue, result_queue)
            stats.workers_spawned += 1

        def dispatch(worker: _Worker, task_id: Any) -> None:
            nonlocal dispatch_ordinal
            dispatch_ordinal += 1
            ordinal_of[task_id] = dispatch_ordinal
            attempts[task_id] += 1
            payload = dict(payloads[task_id])
            payload.pop(_HANG_KEY, None)  # re-dispatches always run clean
            if self._hang_ordinal_due(dispatch_ordinal):
                payload[_HANG_KEY] = _HANG_SECONDS
                assert self.injector is not None
                self.injector.fire_external(
                    "shard_hang",
                    time.monotonic() - self._t0,
                    shard=task_id,
                    ordinal=dispatch_ordinal,
                )
            payloads[task_id] = payload
            stats.dispatched += 1
            redispatch = attempts[task_id] > 1
            if redispatch:
                stats.redispatched += 1
            self._emit(
                "shard_redispatch" if redispatch else "shard_dispatch",
                shard=task_id,
                worker=worker.name,
                attempt=attempts[task_id],
                ordinal=dispatch_ordinal,
            )
            worker.busy = task_id
            worker.task_queue.put((task_id, module, func, payload))

        def degrade(reason: str) -> None:
            nonlocal degraded_reason
            if degraded_reason is None:
                degraded_reason = reason

        def requeue(task_id: Any) -> None:
            """Put a lost shard back on the pending queue, with backoff —
            or declare the pool exhausted when its retry budget is spent."""
            if task_id in results or task_id not in outstanding:
                return
            if attempts[task_id] > policy.max_redispatch:
                degrade(f"shard {task_id!r} exhausted its redispatch budget")
                return
            k = max(attempts[task_id] - 1, 0)
            backoff = min(
                policy.backoff_base * policy.backoff_factor**k, policy.max_backoff
            )
            not_before[task_id] = time.monotonic() + backoff
            pending.append(task_id)

        def lose_worker(worker: _Worker, reason: str) -> None:
            """Declare a worker dead, reap its process, free its shard."""
            if worker.lost:
                return
            worker.lost = True
            stats.workers_lost += 1
            stats.losses.append((worker.name, reason))
            shard = worker.busy
            worker.busy = None
            self._emit("worker_lost", worker=worker.name, reason=reason, shard=shard)
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5.0)
            if shard is not None:
                started_at.pop(shard, None)
                requeue(shard)

        def drain_messages() -> None:
            for worker in list(workers.values()):
                while True:
                    try:
                        message = worker.result_queue.get_nowait()
                    except (Empty, OSError, ValueError):
                        break
                    kind, wname, task_id, body = message
                    worker.last_seen = time.monotonic()
                    if kind == "heartbeat":
                        stats.heartbeats += 1
                        self._emit("worker_heartbeat", worker=wname, beat=task_id)
                    elif kind == "started":
                        started_at[task_id] = time.monotonic()
                        ordinal = ordinal_of.get(task_id, 0)
                        if ordinal in pending_kills and worker.alive:
                            pending_kills.discard(ordinal)
                            pid = worker.process.pid
                            if self.injector is not None:
                                self.injector.fire_external(
                                    "worker_kill",
                                    time.monotonic() - self._t0,
                                    worker=wname,
                                    shard=task_id,
                                    pid=pid,
                                )
                            if pid is not None:
                                os.kill(pid, signal.SIGKILL)
                    elif kind == "result":
                        if task_id in outstanding:
                            outstanding.discard(task_id)
                            results[task_id] = body
                            stats.completed += 1
                        if worker.busy == task_id:
                            worker.busy = None
                        started_at.pop(task_id, None)
                    elif kind == "error":
                        if worker.busy == task_id:
                            worker.busy = None
                        started_at.pop(task_id, None)
                        if task_id in outstanding:
                            self._emit(
                                "worker_lost",
                                worker=wname,
                                reason="shard_error",
                                shard=task_id,
                                error=body,
                            )
                            requeue(task_id)

        def check_liveness() -> None:
            now = time.monotonic()
            for worker in list(workers.values()):
                if worker.lost:
                    continue
                if not worker.process.is_alive():
                    lose_worker(worker, "dead")
                elif now - worker.last_seen > policy.heartbeat_timeout:
                    lose_worker(worker, "heartbeat_timeout")
                elif (
                    worker.busy is not None
                    and worker.busy in started_at
                    and now - started_at[worker.busy] > policy.shard_timeout
                ):
                    lose_worker(worker, "shard_timeout")

        def ensure_capacity() -> None:
            alive = sum(1 for w in workers.values() if w.alive)
            want = min(policy.workers, max(1, len(outstanding)))
            while alive < want and spawned < policy.workers + policy.max_respawns:
                spawn_worker()
                alive += 1
            if alive == 0 and outstanding:
                degrade("no live workers and the respawn budget is spent")

        def assign_pending() -> None:
            now = time.monotonic()
            idle = deque(w for w in workers.values() if w.alive and w.busy is None)
            deferred: list[Any] = []
            while pending and idle:
                task_id = pending.popleft()
                if task_id in results or task_id not in outstanding:
                    continue
                if not_before.get(task_id, 0.0) > now:
                    deferred.append(task_id)
                    continue
                dispatch(idle.popleft(), task_id)
            pending.extend(deferred)

        try:
            for _ in range(min(policy.workers, len(tasks))):
                spawn_worker()
            assign_pending()
            while outstanding and degraded_reason is None:
                drain_messages()
                if not outstanding:
                    break
                check_liveness()
                ensure_capacity()
                if degraded_reason is not None:
                    break
                assign_pending()
                time.sleep(policy.poll_interval)
            drain_messages()
        finally:
            for worker in workers.values():
                if worker.alive:
                    try:
                        worker.task_queue.put_nowait(None)
                    except Exception:
                        pass
            deadline = time.monotonic() + 1.0
            for worker in workers.values():
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
            for worker in workers.values():
                worker.task_queue.cancel_join_thread()
                worker.task_queue.close()
                worker.result_queue.cancel_join_thread()
                worker.result_queue.close()

        if outstanding:
            # Pool exhausted: the serial path finishes the job, exactly.
            stats.degraded = True
            self._emit(
                "pool_degraded",
                reason=degraded_reason or "pool shut down with shards outstanding",
                remaining=len(outstanding),
            )
            fn = _resolve(module, func)
            for task_id in sorted(outstanding, key=lambda t: ordinal_of.get(t, 0)):
                payload = dict(payloads[task_id])
                payload.pop(_HANG_KEY, None)
                results[task_id] = fn(payload)
                stats.serial_fallback += 1
                stats.completed += 1
            outstanding.clear()
        return results
