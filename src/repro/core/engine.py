"""Generic numeric single-machine simulation engine.

The analytic simulators in :mod:`repro.algorithms` integrate the scheduling
dynamics in closed form, but only for ``P(s) = s**alpha`` and only for speed
rules whose dynamics reduce to the two kernels.  This engine is the general
path: it drives any :class:`SchedulingPolicy` with a midpoint (RK2) integrator
and event detection for releases and completions, emitting fine
:class:`~repro.core.schedule.ConstantSegment` s.

It serves two roles:

1. it runs algorithms with no closed form (Algorithm NC for non-uniform
   densities, §4, and arbitrary power functions), and
2. it cross-validates the analytic simulators — property tests drive
   Algorithm C through both paths and require agreement, guarding against
   algebra slips in the closed forms.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from .arraykernels import ArrayPopulation
from .errors import SimulationError
from .job import Instance
from .oracle import VolumeOracle
from .power import PowerFunction
from .schedule import ConstantSegment, Schedule, ScheduleBuilder
from .shadow import SimulationContext

__all__ = ["SchedulingPolicy", "EngineResult", "NumericEngine"]

#: Default bound on steps without progress while jobs are active (a policy
#: running at speed 0 forever); override per engine via ``stall_limit``.
_STALL_LIMIT_STEPS = 200_000


class SchedulingPolicy(ABC):
    """Callbacks a scheduling algorithm implements to run on the engine.

    The engine guarantees:

    * ``bind`` is called once per run, before any other callback, with the
      run's shared :class:`~repro.core.shadow.SimulationContext`;
    * ``on_release`` is called in (release, job_id) order, before any query at
      or after that time;
    * ``on_completion`` is called the moment a job's processed volume reaches
      its true volume (the engine learns this from the oracle; the policy
      receives the now-revealed volume);
    * ``select_job`` / ``speed`` are called with monotonically non-decreasing
      times and reflect the policy's current view.

    Policies that can evaluate their speed rule over the whole population in
    one array pass set :attr:`vectorized` and implement
    :meth:`speed_population`; the engine then maintains a struct-of-arrays
    mirror of the processed volumes and calls that instead of :meth:`speed`
    (unless the run's kernel backend is ``"scalar"``, which forces the
    per-job reference path).
    """

    #: Set by subclasses that implement :meth:`speed_population`.
    vectorized: bool = False

    def bind(self, context: SimulationContext) -> None:
        """Attach the run's shared context (shadow factories + counters).

        The default just stores it; policies that keep shadow oracles route
        them through the context so their activity shows up in the run's
        counters."""
        self.context = context

    @abstractmethod
    def on_release(self, t: float, job_id: int, density: float) -> None: ...

    @abstractmethod
    def on_completion(self, t: float, job_id: int, volume: float) -> None: ...

    @abstractmethod
    def select_job(self, t: float) -> int | None:
        """The job to run at time ``t`` (``None`` = idle)."""

    @abstractmethod
    def speed(self, t: float, processed: dict[int, float]) -> float:
        """Machine speed at time ``t`` given per-job processed volumes."""

    def speed_population(self, t: float, pop: ArrayPopulation) -> float:
        """Machine speed at time ``t`` from the engine's struct-of-arrays
        mirror (``pop.volume`` holds per-slot *processed* volumes; slots
        appear in release order and persist after completion).

        Only called when :attr:`vectorized` is True."""
        raise NotImplementedError(
            f"{type(self).__name__} sets vectorized=True but does not "
            "implement speed_population"
        )


def _prefers_population(policy: SchedulingPolicy) -> bool:
    """Whether the vectorized speed path may replace ``policy.speed``.

    A subclass that overrides ``speed`` without touching ``speed_population``
    (a test double, a tweaked rule) must keep its override in charge: walk
    the MRO and let the most-derived class that defines either method decide.
    """
    if not policy.vectorized:
        return False
    for klass in type(policy).__mro__:
        if "speed_population" in klass.__dict__:
            return True
        if "speed" in klass.__dict__:
            return False
    return False


@dataclass(frozen=True)
class EngineResult:
    schedule: Schedule
    oracle: VolumeOracle
    steps: int
    #: the run's shared context; ``context.counters`` holds the step and
    #: shadow-traffic counters for observability.
    context: SimulationContext | None = None


class NumericEngine:
    """Fixed-max-step RK2 integrator with release/completion event handling.

    ``max_step`` bounds the local truncation error; completions within a step
    are located assuming the midpoint speed holds across the step (error
    ``O(max_step**2)`` per event, matching the integrator order).

    After every event (release or completion) the step size restarts at
    ``min_step`` and doubles each step up to ``max_step``.  This geometric
    ramp costs only ``log2(max_step/min_step)`` extra steps per event but is
    essential for stiff bootstraps: Algorithm NC-general's ``epsilon`` rule
    ignites its shadow simulation inside an ``O(epsilon**2)`` window after a
    release, which a fixed ``max_step`` would overshoot entirely (the run
    would then crawl at speed ``epsilon`` forever).
    """

    def __init__(
        self,
        power: PowerFunction,
        max_step: float = 1e-2,
        min_step: float = 1e-14,
        *,
        stall_limit: int = _STALL_LIMIT_STEPS,
        context: SimulationContext | None = None,
    ) -> None:
        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        if not 0 < min_step <= max_step:
            raise ValueError(f"need 0 < min_step <= max_step, got {min_step}")
        if stall_limit < 1:
            raise ValueError(f"stall_limit must be >= 1, got {stall_limit}")
        self.power = power
        self.max_step = max_step
        self.min_step = min_step
        self.stall_limit = stall_limit
        self._context = context

    def run(self, instance: Instance, policy: SchedulingPolicy) -> EngineResult:
        context = self._context if self._context is not None else SimulationContext(self.power)
        factory = context.oracle_factory
        oracle = VolumeOracle(instance) if factory is None else factory(instance)
        context.oracle = oracle
        policy.bind(context)
        recorder = context.recorder
        rec = recorder if recorder.enabled else None  # zero-overhead hoist
        interceptor = context.step_interceptor  # fault hook; None when unfaulted
        releases = list(oracle.releases())  # FIFO order
        next_release = 0
        processed: dict[int, float] = {}
        # Struct-of-arrays mirror of ``processed`` for vectorized policies.
        # The dict stays the source of truth (oracle, interceptor, events);
        # the mirror exists so the per-step speed probe needs no O(n) dict
        # copy and the policy can evaluate its rule in one array pass.
        pop = (
            ArrayPopulation(capacity=max(len(releases), 1))
            if _prefers_population(policy) and context.backend.name != "scalar"
            else None
        )
        active: set[int] = set()
        builder = ScheduleBuilder()
        t = 0.0
        t_phase = 0.0  # time of the last event; the step ramp restarts here
        steps = 0
        stall = 0
        last_speed = 0.0  # for speed_change events (traced runs only)
        last_job: int | None = None

        def fire_releases(now: float) -> None:
            nonlocal next_release, t_phase
            while next_release < len(releases) and releases[next_release].release <= now + 1e-15:
                info = releases[next_release]
                processed[info.job_id] = 0.0
                if pop is not None:
                    pop.append(info.job_id, info.release, info.density, 0.0)
                active.add(info.job_id)
                policy.on_release(info.release, info.job_id, info.density)
                if rec is not None:
                    rec.emit(
                        "release",
                        info.release,
                        "engine",
                        job=info.job_id,
                        density=info.density,
                    )
                next_release += 1
                t_phase = now

        fire_releases(t)
        while active or next_release < len(releases):
            steps += 1
            if steps > self.stall_limit + len(releases):
                raise SimulationError(
                    f"engine exceeded {steps} steps at t={t}; "
                    "policy likely stalled at zero speed",
                    time=t,
                    steps=steps,
                )
            if not active:
                # Idle until the next release.
                t_next = releases[next_release].release
                builder.append(ConstantSegment(t, t_next, None, 0.0))
                t = t_next
                fire_releases(t)
                continue

            job_id = policy.select_job(t)
            horizon = (
                releases[next_release].release if next_release < len(releases) else math.inf
            )
            if job_id is None:
                # Policy idles despite active jobs (legal, e.g. A_int).
                t_next = min(horizon, t + self.max_step)
                if not math.isfinite(t_next):
                    raise SimulationError(
                        f"policy idles forever with active jobs at t={t}", time=t
                    )
                builder.append(ConstantSegment(t, t_next, None, 0.0))
                t = t_next
                fire_releases(t)
                continue
            if job_id not in active:
                raise SimulationError(
                    f"policy selected inactive job {job_id} at t={t}", time=t, job=job_id
                )

            # Geometric step ramp: restart small after each event, double up
            # to max_step.  The floor respects float resolution at large t.
            floor = max(self.min_step, 32.0 * math.ulp(max(1.0, t)))
            h = min(self.max_step, max(floor, t - t_phase))
            if math.isfinite(horizon):
                h = min(h, horizon - t)
            if h <= 0:
                fire_releases(t)
                continue

            # RK2 midpoint: probe speed, re-evaluate at the midpoint state.
            # The probe is clamped to the job's true volume so a coarse step
            # near completion cannot present the policy with an overshot state.
            true_volume = oracle._true_volume(job_id)
            if pop is None:
                s0 = policy.speed(t, processed)
                probe = dict(processed)
                probe[job_id] = min(processed[job_id] + s0 * h / 2.0, true_volume)
                s_mid = policy.speed(t + h / 2.0, probe)
            else:
                # Probe in place on the mirror: set the half-step volume,
                # evaluate, restore.  No dict copy per step.
                slot = pop.slot_of(job_id)
                s0 = policy.speed_population(t, pop)
                saved = float(pop.volume[slot])
                pop.volume[slot] = min(saved + s0 * h / 2.0, true_volume)
                s_mid = policy.speed_population(t + h / 2.0, pop)
                pop.volume[slot] = saved
            if s_mid < 0 or not math.isfinite(s_mid):
                raise SimulationError(
                    f"policy returned invalid speed {s_mid} at t={t}",
                    time=t,
                    job=job_id,
                    speed=s_mid,
                )
            if s_mid <= 0.0 < s0:
                # The half-step probe already finished the job, so the
                # midpoint sees an empty machine; the step straddles the
                # completion.  Fall back to the start-of-step speed — the
                # completion cut below then lands within O(h^2) of the truth.
                s_mid = s0
            if s_mid <= 0:
                stall += 1
                if rec is not None:
                    rec.emit("stall_guard_tick", t, "engine", stall=stall, limit=self.stall_limit)
                if stall > self.stall_limit:
                    raise SimulationError(
                        f"policy stalled at zero speed near t={t}",
                        time=t,
                        job=job_id,
                        stall_steps=stall,
                    )
                builder.append(ConstantSegment(t, t + h, None, 0.0))
                t += h
                fire_releases(t)
                continue
            stall = 0
            if rec is not None and (s_mid != last_speed or job_id != last_job):
                rec.emit(
                    "speed_change", t, "engine", job=job_id, speed=s_mid, prev_speed=last_speed
                )
                last_speed = s_mid
                last_job = job_id

            room = true_volume - processed[job_id]
            if s_mid * h >= room - 1e-15 * max(1.0, true_volume):
                # Completion inside this step: cut the step at the crossing.
                # ``room`` is positive on the unfaulted path; the floor at 0
                # keeps a corrupted processed volume from producing a
                # backwards segment.
                dt = max(room, 0.0) / s_mid
                builder.append(ConstantSegment(t, t + dt, job_id, s_mid))
                processed[job_id] = true_volume
                if pop is not None:
                    pop.volume[pop.slot_of(job_id)] = true_volume
                t += dt
                t_phase = t
                active.discard(job_id)
                oracle._mark_completed(job_id)
                policy.on_completion(t, job_id, oracle._reveal_on_completion(job_id))
                if rec is not None:
                    rec.emit("completion", t, "engine", job=job_id, volume=true_volume)
            else:
                builder.append(ConstantSegment(t, t + h, job_id, s_mid))
                processed[job_id] += s_mid * h
                if interceptor is not None:
                    corrupted = interceptor(t + h, job_id, processed[job_id])
                    if not math.isfinite(corrupted) or corrupted < 0.0:
                        raise SimulationError(
                            f"processed volume of job {job_id} corrupted to "
                            f"{corrupted} at t={t + h}",
                            time=t + h,
                            job=job_id,
                            value=corrupted,
                        )
                    processed[job_id] = corrupted
                if pop is not None:
                    pop.volume[pop.slot_of(job_id)] = processed[job_id]
                t += h
            fire_releases(t)

        context.counters.engine_steps += steps
        return EngineResult(
            schedule=builder.build(), oracle=oracle, steps=steps, context=context
        )
