"""Tests for CSV trace import/export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.workloads import read_trace, trace_from_string, write_trace

from conftest import general_instances


class TestParse:
    def test_basic(self):
        inst = trace_from_string(
            "job_id,release,volume,density\n0,0.0,2.0,1.0\n1,1.5,1.0,4.0\n"
        )
        assert inst.job_ids == (0, 1)
        assert inst[1].density == 4.0

    def test_density_optional(self):
        inst = trace_from_string("job_id,release,volume\n0,0.0,2.0\n")
        assert inst[0].density == 1.0

    def test_empty_density_cell_defaults(self):
        inst = trace_from_string("job_id,release,volume,density\n0,0.0,2.0,\n")
        assert inst[0].density == 1.0

    def test_missing_column_rejected(self):
        with pytest.raises(InvalidInstanceError):
            trace_from_string("job_id,release\n0,0.0\n")

    def test_bad_value_reports_line(self):
        with pytest.raises(InvalidInstanceError, match="line 3"):
            trace_from_string("job_id,release,volume\n0,0.0,1.0\n1,xyz,1.0\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(InvalidInstanceError):
            trace_from_string("job_id,release,volume\n")
        with pytest.raises(InvalidInstanceError):
            trace_from_string("")

    def test_invalid_job_values_rejected(self):
        with pytest.raises(InvalidInstanceError):
            trace_from_string("job_id,release,volume\n0,0.0,-1.0\n")


class TestRoundTrip:
    @given(general_instances(max_jobs=8))
    @settings(max_examples=25, deadline=None)
    def test_file_roundtrip_exact(self, inst):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".csv")
        os.close(fd)
        try:
            write_trace(path, inst)
            again = read_trace(path)
            assert again.jobs == inst.jobs
        finally:
            os.unlink(path)
