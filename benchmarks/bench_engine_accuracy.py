"""E10 — engine validation: the numeric integrator against the closed forms.

Drives Algorithm C through the generic numeric engine at decreasing step
sizes and reports the objective's relative error against the exact analytic
simulation — the convergence that justifies trusting the engine for
Algorithm NC-general, which has no closed form.  This bench also *times* the
engine (the one harness component where wall-clock matters).
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import ClairvoyantPolicy, simulate_clairvoyant
from repro.analysis import format_table
from repro.core import NumericEngine, evaluate

from conftest import emit

ALPHA = 3.0


def _instance() -> Instance:
    return Instance(
        [Job(0, 0.0, 4.0), Job(1, 1.0, 2.0), Job(2, 1.5, 1.0), Job(3, 2.5, 3.0)]
    )


def _engine_run(max_step: float) -> float:
    power = PowerLaw(ALPHA)
    inst = _instance()
    result = NumericEngine(power, max_step=max_step).run(inst, ClairvoyantPolicy(inst, power))
    return evaluate(result.schedule, inst, power).fractional_objective


def test_engine_accuracy(benchmark):
    power = PowerLaw(ALPHA)
    inst = _instance()
    exact = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).fractional_objective

    rows = []
    for h in (5e-2, 1e-2, 2e-3, 4e-4):
        approx = _engine_run(h)
        rows.append([h, approx, exact, abs(approx - exact) / exact])

    # Time the engine at the default step (this is the pytest-benchmark part).
    benchmark(_engine_run, 1e-2)

    table = format_table(
        ["max_step", "engine objective", "exact objective", "rel error"],
        rows,
        title="Numeric engine vs analytic closed forms (Algorithm C, 4 jobs)",
        floatfmt=".3e",
    )
    emit("engine_accuracy", table)

    errs = [r[3] for r in rows]
    assert all(a >= b for a, b in zip(errs, errs[1:])), "error must shrink with the step"
    assert errs[-1] < 1e-5
