"""Tier-1: deterministic fault plans and the injectors that realize them."""

import math

import pytest

from repro import Instance, Job, PowerLaw
from repro.core.errors import ConvergenceError, SimulationError
from repro.core.shadow import SimulationContext
from repro.core.tracing import MemoryRecorder
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyVolumeOracle,
    FlakyPowerFunction,
    generate_plan,
    simulate_nc_par_with_failure,
)
from repro.parallel import simulate_nc_par
from repro.workloads import random_instance

ALPHA = 3.0


def _ctx(power=None):
    return SimulationContext(power or PowerLaw(ALPHA), recorder=MemoryRecorder())


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = generate_plan(42, n_faults=3, n_jobs=8, machines=3, transient_only=False)
        b = generate_plan(42, n_faults=3, n_jobs=8, machines=3, transient_only=False)
        assert a == b
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        plans = {generate_plan(s, n_faults=2, n_jobs=8).describe() for s in range(10)}
        assert len(plans) > 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="gremlin")
        with pytest.raises(ValueError):
            FaultSpec(kind="oracle_lie", max_firings=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="power_nan", after_calls=-1)
        with pytest.raises(ValueError):
            generate_plan(0, kinds=("not_a_kind",))

    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert plan.of_kind(*FAULT_KINDS) == ()
        assert "no faults" in plan.describe()

    def test_payload_keys_fault_kind(self):
        spec = FaultSpec(kind="machine_failure", machine=1, at_time=0.5)
        payload = spec.as_payload()
        assert payload["fault"] == "machine_failure"
        assert "kind" not in payload  # would collide with the event's own kind


class TestInjectorChannels:
    def test_faulty_oracle_lies_only_at_reveal(self):
        inst = Instance([Job(0, 0.0, 2.0, 1.0)])
        oracle = FaultyVolumeOracle(inst, lambda j, v: v * 10.0)
        assert oracle._reveal_on_completion(0) == 20.0
        assert oracle._true_volume(0) == 2.0  # physics stays honest

    def test_flaky_power_transient_then_recovers(self):
        calls = {"n": 0}

        def on_speed(_value):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ConvergenceError("boom", call=calls["n"])
            return None

        flaky = FlakyPowerFunction(ALPHA, on_speed)
        honest = PowerLaw(ALPHA)
        assert flaky.speed(8.0) == honest.speed(8.0)
        with pytest.raises(ConvergenceError):
            flaky.speed(8.0)
        assert flaky.speed(8.0) == honest.speed(8.0)

    def test_perturb_jitter_shifts_release(self):
        ctx = _ctx()
        plan = FaultPlan(0, (FaultSpec(kind="release_jitter", job_id=1, magnitude=0.25),))
        inj = FaultInjector(plan, ctx)
        inst = Instance([Job(0, 0.0, 1.0, 1.0), Job(1, 0.5, 1.0, 1.0)])
        out = inj.perturb_instance(inst)
        assert out[1].release == pytest.approx(0.75)
        assert out[0].release == 0.0
        # budget spent: the retry sees the original instance object
        assert inj.perturb_instance(inst) is inst

    def test_perturb_duplicate_adds_phantom(self):
        ctx = _ctx()
        plan = FaultPlan(0, (FaultSpec(kind="release_duplicate", job_id=0),))
        inj = FaultInjector(plan, ctx)
        inst = Instance([Job(0, 0.0, 1.0, 1.0), Job(1, 0.5, 1.0, 1.0)])
        out = inj.perturb_instance(inst)
        assert len(out) == 3
        phantom = [j for j in out if j.job_id not in (0, 1)]
        assert len(phantom) == 1
        assert phantom[0].volume == inst[0].volume

    def test_perturb_drop_removes_job_but_never_the_last(self):
        ctx = _ctx()
        plan = FaultPlan(0, (FaultSpec(kind="release_drop", job_id=1),))
        inj = FaultInjector(plan, ctx)
        inst = Instance([Job(0, 0.0, 1.0, 1.0), Job(1, 0.5, 1.0, 1.0)])
        out = inj.perturb_instance(inst)
        assert [j.job_id for j in out] == [0]

        lonely = Instance([Job(0, 0.0, 1.0, 1.0)])
        inj2 = FaultInjector(
            FaultPlan(0, (FaultSpec(kind="release_drop", job_id=0),)), _ctx()
        )
        assert [j.job_id for j in inj2.perturb_instance(lonely)] == [0]

    def test_lie_modes(self):
        for mode, check in (
            ("scale", lambda v: v == pytest.approx(1.5)),
            ("nan", lambda v: math.isnan(v)),
        ):
            plan = FaultPlan(0, (FaultSpec(kind="oracle_lie", mode=mode, magnitude=0.5),))
            inj = FaultInjector(plan, _ctx())
            assert check(inj._lie(0, 1.0))
            # budget spent: second reveal is honest
            assert inj._lie(0, 1.0) == 1.0

        plan = FaultPlan(0, (FaultSpec(kind="oracle_lie", mode="withhold"),))
        inj = FaultInjector(plan, _ctx())
        with pytest.raises(SimulationError) as exc:
            inj._lie(3, 1.0)
        assert exc.value.context["job"] == 3

    def test_wrap_power_is_identity_without_power_faults(self):
        power = PowerLaw(ALPHA)
        inj = FaultInjector(FaultPlan.empty(), _ctx(power))
        assert inj.wrap_power(power) is power

    def test_install_wires_nothing_for_empty_plan(self):
        ctx = _ctx()
        inj = FaultInjector(FaultPlan.empty(), ctx)
        inj.install()
        assert ctx.volume_filter is None
        assert ctx.oracle_factory is None
        assert ctx.step_interceptor is None

    def test_fired_events_are_typed_and_budgeted(self):
        ctx = _ctx()
        plan = FaultPlan(0, (FaultSpec(kind="oracle_lie", magnitude=0.5),))
        inj = FaultInjector(plan, ctx)
        inj._lie(0, 1.0)
        assert inj.exhausted
        events = ctx.recorder.events_of(kind="fault_injected")
        assert len(events) == 1
        assert events[0].payload["fault"] == "oracle_lie"
        assert ctx.metrics.get("faults_fired") == 1


class TestMachineFailure:
    def test_failover_completes_all_jobs(self):
        power = PowerLaw(ALPHA)
        inst = random_instance(10, seed=5, volume="uniform")
        ctx = _ctx(power)
        run = simulate_nc_par_with_failure(
            inst, power, 3, dead_machine=0, fail_time=0.4, context=ctx
        )
        report = run.report(validate=True)
        assert math.isfinite(report.energy) and report.energy > 0
        scheduled = {j for jobs in run.assignments.values() for j in jobs}
        assert scheduled == {j.job_id for j in inst}
        # nothing lands on the dead machine after the failure
        for seg in run.schedules.get(0, []).segments if 0 in run.schedules else []:
            assert seg.t1 <= 0.4 + 1e-9 or seg.t0 < 0.4

    def test_failover_emits_fault_and_recovery_events(self):
        power = PowerLaw(ALPHA)
        inst = random_instance(8, seed=7, volume="uniform")
        ctx = _ctx(power)
        simulate_nc_par_with_failure(
            inst, power, 2, dead_machine=1, fail_time=0.3, context=ctx
        )
        kinds = {e.kind for e in ctx.recorder.events}
        assert "fault_injected" in kinds
        fault = ctx.recorder.events_of(kind="fault_injected")[0]
        assert fault.payload["fault"] == "machine_failure"
        assert ctx.metrics.get("machine_failures") == 1

    def test_failover_requires_two_machines(self):
        power = PowerLaw(ALPHA)
        inst = random_instance(4, seed=1, volume="uniform")
        from repro.core.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            simulate_nc_par_with_failure(
                inst, power, 1, dead_machine=0, fail_time=0.1
            )

    def test_failure_at_t0_equals_one_fewer_machine(self):
        """Dead on arrival: the machine never runs anything, so the cluster
        behaves exactly like a (k-1)-machine run with indices shifted."""
        power = PowerLaw(ALPHA)
        inst = random_instance(12, seed=21, volume="uniform")
        failed = simulate_nc_par_with_failure(
            inst, power, 3, dead_machine=0, fail_time=0.0
        )
        plain = simulate_nc_par(inst, power, 2)
        assert failed.assignments[0] == []
        for survivor in (1, 2):
            assert failed.assignments[survivor] == plain.assignments[survivor - 1]
        assert failed.report(validate=True) == plain.report(validate=True)

    def test_failure_after_last_completion_is_a_noop(self):
        """A failure scheduled after the machine's last completion kills
        nothing and requeues nothing: the run equals the plain NC-PAR run."""
        power = PowerLaw(ALPHA)
        inst = random_instance(12, seed=22, volume="uniform")
        plain = simulate_nc_par(inst, power, 3)
        horizon = max(
            seg.t1 for sched in plain.schedules.values() for seg in sched.segments
        )
        ctx = _ctx(power)
        failed = simulate_nc_par_with_failure(
            inst, power, 3, dead_machine=1, fail_time=horizon + 1.0, context=ctx
        )
        assert failed.assignments == plain.assignments
        assert failed.report(validate=True) == plain.report(validate=True)
        assert ctx.recorder.events_of(kind="fault_injected") == []
        assert ctx.metrics.get("machine_failures") == 0

    def test_repeated_failures_same_machine_fire_once(self):
        """Two machine_failure specs on the same machine in one run: the
        machine can only die once, so exactly one budget is spent and the
        second spec stays armed."""
        power = PowerLaw(ALPHA)
        inst = random_instance(10, seed=23, volume="uniform")
        ctx = _ctx(power)
        plan = FaultPlan(
            0,
            (
                FaultSpec(kind="machine_failure", machine=0, at_time=0.2),
                FaultSpec(kind="machine_failure", machine=0, at_time=0.4),
            ),
        )
        inj = FaultInjector(plan, ctx)
        run = simulate_nc_par_with_failure(
            inst, power, 3, dead_machine=0, fail_time=0.2, context=ctx, injector=inj
        )
        assert len(inj.fired) == 1
        assert len(inj.armed_specs("machine_failure")) == 1
        assert len(ctx.recorder.events_of(kind="fault_injected")) == 1
        scheduled = {j for jobs in run.assignments.values() for j in jobs}
        assert scheduled == {j.job_id for j in inst}
