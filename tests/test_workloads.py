"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.core.metrics import evaluate
from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.offline.single_job import single_job_opt_fractional
from repro.workloads import (
    Tenant,
    billing_summary,
    burst_instance,
    cloud_instance,
    escalating_volumes_instance,
    geometric_density_instance,
    random_instance,
    staircase_instance,
    volume_for_unit_cost,
)


class TestRandomInstances:
    def test_deterministic_under_seed(self):
        a = random_instance(20, 42)
        b = random_instance(20, 42)
        assert [(j.release, j.volume, j.density) for j in a] == [
            (j.release, j.volume, j.density) for j in b
        ]

    def test_different_seeds_differ(self):
        a = random_instance(20, 1)
        b = random_instance(20, 2)
        assert [j.volume for j in a] != [j.volume for j in b]

    def test_all_volume_models(self):
        for model in ("exponential", "pareto", "uniform", "bimodal"):
            inst = random_instance(15, 7, volume=model)
            assert len(inst) == 15
            assert all(j.volume > 0 for j in inst)

    def test_all_density_models(self):
        for model in ("unit", "loguniform", "powers"):
            inst = random_instance(15, 7, density=model)
            assert all(j.density > 0 for j in inst)

    def test_unit_density_is_uniform(self):
        assert random_instance(10, 3, density="unit").is_uniform_density()

    def test_powers_model_on_grid(self):
        inst = random_instance(
            30, 5, density="powers", density_params={"beta": 5.0, "classes": 3}
        )
        for j in inst:
            assert j.density in (1.0, 5.0, 25.0)

    def test_releases_increasing(self):
        inst = random_instance(25, 11)
        rel = [j.release for j in inst]
        assert rel == sorted(rel)

    def test_rate_scales_releases(self):
        slow = random_instance(50, 9, rate=0.1)
        fast = random_instance(50, 9, rate=10.0)
        assert fast.max_release < slow.max_release

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            random_instance(0, 1)
        with pytest.raises(ValueError):
            random_instance(5, 1, rate=0.0)
        with pytest.raises(KeyError):
            random_instance(5, 1, volume="nope")


class TestAdversarial:
    def test_burst_counts(self):
        inst = burst_instance(3, 4, gap=10.0)
        assert len(inst) == 12
        # All releases within a burst are within the jitter of the burst time.
        firsts = [j.release for j in inst][::4]
        assert firsts == pytest.approx([0.0, 10.0, 20.0])

    def test_burst_distinct_releases(self):
        inst = burst_instance(2, 5)
        rel = [j.release for j in inst]
        assert len(set(rel)) == len(rel)

    def test_staircase_marginal_backlog(self, cube):
        inst = staircase_instance(5, alpha=3.0, overlap=0.5)
        rel = [j.release for j in inst]
        gaps = [b - a for a, b in zip(rel, rel[1:])]
        assert all(g == pytest.approx(gaps[0]) for g in gaps)

    def test_volume_for_unit_cost_inverts(self):
        v = volume_for_unit_cost(2.5, 3.0, 3.0)
        assert single_job_opt_fractional(v, 3.0, 3.0).objective == pytest.approx(2.5, rel=1e-9)

    def test_geometric_density_calibration(self, cube):
        inst = geometric_density_instance(4, rho=5.0, unit_cost=1.0, alpha=3.0)
        assert len(inst) == 4
        for j in inst:
            assert single_job_opt_fractional(j.volume, j.density, 3.0).objective == pytest.approx(
                1.0, rel=1e-6
            )

    def test_geometric_density_spread(self):
        inst = geometric_density_instance(3, rho=4.0)
        dens = sorted(j.density for j in inst)
        assert dens == pytest.approx([1.0, 4.0, 16.0])

    def test_section7_observation(self, cube):
        """§7: processing all l geometric-density jobs on ONE machine costs at
        most 4*l*c once rho >= 4 (here with Algorithm C as the scheduler,
        which is 2-competitive, so we allow the 2x on top: <= 8*l*c; in
        practice it is far below 4*l*c)."""
        l, c = 5, 1.0
        inst = geometric_density_instance(l, rho=5.0, unit_cost=c, alpha=3.0)
        cost = evaluate(
            simulate_clairvoyant(inst, cube).schedule, inst, cube
        ).fractional_objective
        assert cost <= 4 * l * c * 2.0
        # And it is genuinely more than one job's worth.
        assert cost >= c

    def test_escalating_volumes(self):
        inst = escalating_volumes_instance(5, base=0.1, factor=2.0)
        vols = [j.volume for j in inst]
        assert vols == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6])

    def test_escalating_overflow_guard(self):
        with pytest.raises(ValueError):
            escalating_volumes_instance(10000, base=10.0, factor=10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            burst_instance(0, 1)
        with pytest.raises(ValueError):
            staircase_instance(3, overlap=2.0)
        with pytest.raises(ValueError):
            geometric_density_instance(0, 5.0)
        with pytest.raises(ValueError):
            geometric_density_instance(3, 1.0)
        with pytest.raises(ValueError):
            volume_for_unit_cost(-1.0, 1.0, 3.0)


class TestCloud:
    def test_deterministic(self):
        a, _ = cloud_instance(5, 42)
        b, _ = cloud_instance(5, 42)
        assert [j.volume for j in a] == [j.volume for j in b]

    def test_owner_mapping_complete(self):
        inst, owner = cloud_instance(4, 1)
        assert set(owner) == set(inst.job_ids)

    def test_densities_are_penalty_rates(self):
        inst, owner = cloud_instance(3, 2)
        for j in inst:
            assert j.density == owner[j.job_id].penalty

    def test_billing_summary(self, cube):

        tenants = (Tenant("t", lam=10.0, penalty=1.0, mean_volume=1.0),)
        inst, owner = cloud_instance(4, 3, tenants=tenants)
        rep = evaluate(simulate_clairvoyant(inst, cube).schedule, inst, cube)
        bill = billing_summary(rep, inst, owner)
        assert bill.gross_payment == pytest.approx(10.0 * inst.total_volume)
        assert bill.delay_penalty == pytest.approx(rep.integral_flow)
        assert bill.net < bill.gross_payment

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            cloud_instance(0, 1)
