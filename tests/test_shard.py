"""Tier-1: the sharded execution layer (Lemma 20 made executable).

The load-bearing contract is *bit-identity*: sharded execution — serial,
pooled, killed-and-recovered, or resumed from checkpoint — must reproduce
the serial :meth:`ClusterRun.report` exactly (``==`` on every float), not
to a tolerance.  Lemma 20 is what makes that possible, so its two halves
(NC-PAR/C-PAR dispatch identity; per-machine independence) are tested as
differentials over the golden corpus.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import PowerLaw
from repro.core.errors import InvalidInstanceError
from repro.core.job import Instance, Job
from repro.core.shadow import SimulationContext
from repro.core.tracing import MemoryRecorder
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel import (
    ShardCheckpointStore,
    compute_shard,
    plan_shards,
    run_sharded,
    shard_payload,
    simulate_c_par,
    simulate_nc_par,
)
from repro.runtime.chaos import format_shard_campaign, run_shard_campaign
from repro.runtime.pool import PoolPolicy, PoolStats, WorkerPool
from repro.workloads import random_instance

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "golden_corpus.json"
ALPHA = 3.0

_CORPUS = json.loads(CORPUS_PATH.read_text())
_UNIFORM_KEYS = sorted(k for k in _CORPUS if k.startswith("nc_uniform/"))

#: pool knobs tuned for test speed: fast heartbeats, fast polling.
_FAST = dict(heartbeat_interval=0.02, poll_interval=0.005)


def _instance(spec: list[list[float]]) -> Instance:
    return Instance(
        [Job(int(j), release, volume, density) for j, release, volume, density in spec]
    )


def _ctx(power=None):
    return SimulationContext(power or PowerLaw(ALPHA), recorder=MemoryRecorder())


class TestLemma20Dispatch:
    """First half of Lemma 20: NC-PAR and C-PAR assign identically."""

    @pytest.mark.parametrize("key", _UNIFORM_KEYS)
    @pytest.mark.parametrize("machines", [2, 3])
    def test_dispatch_identity_on_corpus(self, key, machines):
        entry = _CORPUS[key]
        inst = _instance(entry["instance"])
        power = PowerLaw(entry["alpha"])
        nc = simulate_nc_par(inst, power, machines)
        c = simulate_c_par(inst, power, machines)
        assert nc.assignments == c.assignments


class TestShardedBitIdentity:
    """Second half of Lemma 20: per-machine re-derivation merges exactly."""

    @pytest.mark.parametrize("key", _UNIFORM_KEYS)
    def test_serial_shards_match_cluster_report(self, key):
        entry = _CORPUS[key]
        inst = _instance(entry["instance"])
        power = PowerLaw(entry["alpha"])
        result = run_sharded(inst, power, 3, force_serial=True)
        assert result.report == result.cluster.report()
        assert result.stats is None and result.resumed == 0

    def test_pool_matches_serial_under_empty_fault_plan(self):
        inst = random_instance(20, seed=31, volume="uniform")
        power = PowerLaw(ALPHA)
        serial = run_sharded(inst, power, 4, force_serial=True)
        pooled = run_sharded(
            inst, power, 4, policy=PoolPolicy(workers=2, **_FAST)
        )
        assert pooled.report == serial.report
        assert pooled.report == pooled.cluster.report()
        assert isinstance(pooled.stats, PoolStats)
        assert pooled.stats.completed == len(pooled.shards)
        assert not pooled.stats.degraded and pooled.stats.workers_lost == 0

    def test_c_par_shards_match_cluster_report(self):
        inst = random_instance(14, seed=8, volume="uniform")
        power = PowerLaw(ALPHA)
        result = run_sharded(inst, power, 3, algorithm="c_par", force_serial=True)
        assert result.report == result.cluster.report()

    def test_compute_shard_is_pure(self):
        inst = random_instance(10, seed=2, volume="uniform")
        cluster = simulate_nc_par(inst, PowerLaw(ALPHA), 2)
        shards = plan_shards(cluster.assignments, 2)
        payload = shard_payload(shards[0], cluster, algorithm="nc_par")
        assert compute_shard(payload) == compute_shard(json.loads(json.dumps(payload)))

    def test_rejects_unknown_algorithm(self):
        inst = random_instance(4, seed=1, volume="uniform")
        with pytest.raises(InvalidInstanceError):
            run_sharded(inst, PowerLaw(ALPHA), 2, algorithm="magic")


class TestPlanShards:
    def test_balanced_and_complete(self):
        assignments = {0: [1, 2, 3, 4], 1: [5, 6], 2: [7], 3: []}
        shards = plan_shards(assignments, 2)
        members = [m for s in shards for m in s.machines]
        assert sorted(members) == [0, 1, 2]  # empty machine 3 excluded
        loads = [sum(len(assignments[m]) for m in s.machines) for s in shards]
        assert max(loads) == 4  # LPT: the heavy machine sits alone
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_caps_at_loaded_machines(self):
        shards = plan_shards({0: [1], 1: [2]}, 8)
        assert len(shards) == 2

    def test_rejects_empty_and_invalid(self):
        with pytest.raises(InvalidInstanceError):
            plan_shards({0: [], 1: []}, 2)
        with pytest.raises(InvalidInstanceError):
            plan_shards({0: [1]}, 0)


class TestCheckpoints:
    def test_resume_skips_recompute(self, tmp_path):
        inst = random_instance(12, seed=4, volume="uniform")
        power = PowerLaw(ALPHA)
        first = run_sharded(
            inst, power, 3, force_serial=True, checkpoint_dir=tmp_path
        )
        assert first.resumed == 0
        second = run_sharded(
            inst, power, 3, force_serial=True, checkpoint_dir=tmp_path
        )
        assert second.resumed == len(second.shards)
        assert second.report == first.report

    def test_run_key_separates_runs(self, tmp_path):
        inst = random_instance(12, seed=4, volume="uniform")
        run_sharded(
            inst, PowerLaw(ALPHA), 3, force_serial=True, checkpoint_dir=tmp_path
        )
        other = run_sharded(
            inst, PowerLaw(ALPHA), 3, algorithm="c_par", force_serial=True,
            checkpoint_dir=tmp_path,
        )
        assert other.resumed == 0  # different algorithm, different run_key
        nc_keys = ShardCheckpointStore.run_key(other.cluster, "nc_par")
        c_keys = ShardCheckpointStore.run_key(other.cluster, "c_par")
        assert nc_keys != c_keys

    def test_corrupt_checkpoint_discarded_and_recomputed(self, tmp_path):
        inst = random_instance(12, seed=4, volume="uniform")
        power = PowerLaw(ALPHA)
        first = run_sharded(
            inst, power, 3, force_serial=True, checkpoint_dir=tmp_path
        )
        victim = sorted(tmp_path.glob("shard-*.json"))[0]
        wrapper = json.loads(victim.read_text())
        body = wrapper["body"]
        mid = len(body) // 2
        wrapper["body"] = body[:mid] + ("0" if body[mid] != "0" else "1") + body[mid + 1 :]
        victim.write_text(json.dumps(wrapper))
        ctx = _ctx(power)
        second = run_sharded(
            inst, power, 3, force_serial=True, checkpoint_dir=tmp_path, context=ctx
        )
        assert second.resumed == len(second.shards) - 1
        assert second.report == first.report
        actions = [
            e.payload["action"]
            for e in ctx.recorder.events_of(kind="shard_checkpoint")
        ]
        assert "corrupt_discard" in actions and "resume" in actions

    def test_corruption_fault_caught_by_checksum(self, tmp_path):
        inst = random_instance(12, seed=4, volume="uniform")
        power = PowerLaw(ALPHA)
        ctx = _ctx(power)
        plan = FaultPlan(0, (FaultSpec(kind="checkpoint_corruption", after_calls=1),))
        injector = FaultInjector(plan, ctx)
        first = run_sharded(
            inst, power, 3, force_serial=True, checkpoint_dir=tmp_path,
            context=ctx, injector=injector,
        )
        assert [s.kind for s, _ in injector.fired] == ["checkpoint_corruption"]
        second = run_sharded(
            inst, power, 3, force_serial=True, checkpoint_dir=tmp_path, context=ctx
        )
        # the corrupted shard is discarded + recomputed, the rest resume
        assert second.resumed == len(second.shards) - 1
        assert second.report == first.report


class TestPoolRecovery:
    def test_worker_kill_recovers_bit_identical(self):
        inst = random_instance(16, seed=9, volume="uniform")
        power = PowerLaw(ALPHA)
        serial = run_sharded(inst, power, 4, force_serial=True)
        ctx = _ctx(power)
        plan = FaultPlan(0, (FaultSpec(kind="worker_kill", after_calls=1),))
        injector = FaultInjector(plan, ctx)
        result = run_sharded(
            inst, power, 4,
            policy=PoolPolicy(workers=2, shard_timeout=30.0, **_FAST),
            context=ctx, injector=injector, shard_hold=0.08,
        )
        assert [s.kind for s, _ in injector.fired] == ["worker_kill"]
        assert result.stats is not None
        assert result.stats.workers_lost >= 1
        assert result.stats.redispatched >= 1
        assert result.report == serial.report
        kinds = {e.kind for e in ctx.recorder.events}
        assert {"shard_dispatch", "worker_lost", "shard_redispatch"} <= kinds

    def test_shard_hang_times_out_and_redispatches(self):
        inst = random_instance(12, seed=12, volume="uniform")
        power = PowerLaw(ALPHA)
        serial = run_sharded(inst, power, 2, force_serial=True)
        ctx = _ctx(power)
        plan = FaultPlan(0, (FaultSpec(kind="shard_hang", after_calls=1),))
        injector = FaultInjector(plan, ctx)
        result = run_sharded(
            inst, power, 2,
            policy=PoolPolicy(workers=2, shard_timeout=0.3, **_FAST),
            context=ctx, injector=injector,
        )
        assert [s.kind for s, _ in injector.fired] == ["shard_hang"]
        assert result.stats is not None and result.stats.redispatched >= 1
        assert result.report == serial.report
        reasons = [
            e.payload.get("reason")
            for e in ctx.recorder.events_of(kind="worker_lost")
        ]
        assert "shard_timeout" in reasons

    def test_degrades_to_serial_when_pool_exhausted(self):
        inst = random_instance(12, seed=13, volume="uniform")
        power = PowerLaw(ALPHA)
        serial = run_sharded(inst, power, 2, force_serial=True)
        ctx = _ctx(power)
        # every dispatch ordinal is killed and no redispatch is allowed:
        # the pool must give up and finish the shards serially.
        plan = FaultPlan(
            0,
            tuple(
                FaultSpec(kind="worker_kill", after_calls=k, max_firings=1)
                for k in (1, 2, 3, 4)
            ),
        )
        injector = FaultInjector(plan, ctx)
        result = run_sharded(
            inst, power, 2,
            policy=PoolPolicy(
                workers=1, max_redispatch=0, max_respawns=0, **_FAST
            ),
            context=ctx, injector=injector, shard_hold=0.05,
        )
        assert result.stats is not None
        assert result.stats.degraded and result.stats.serial_fallback >= 1
        assert result.report == serial.report
        assert ctx.recorder.events_of(kind="pool_degraded")

    def test_pool_policy_validation(self):
        with pytest.raises(ValueError):
            PoolPolicy(workers=0)
        with pytest.raises(ValueError):
            PoolPolicy(heartbeat_timeout=-1.0)

    def test_pool_rejects_unresolvable_task(self):
        pool = WorkerPool(PoolPolicy(workers=1, **_FAST))
        with pytest.raises(Exception):
            pool.run([(0, {"x": 1})], "repro.parallel.shard", "not_a_function")


class TestShardCampaign:
    def test_small_campaign_is_ok_and_formats(self, tmp_path):
        report = run_shard_campaign(
            0, 1, jobs=10, machines=3, workers=2, kills=1,
            shard_hold=0.08, checkpoint_dir=tmp_path,
        )
        assert report.ok
        assert report.total_workers_killed >= 1
        run = report.outcomes[0]
        assert run.status in ("clean", "recovered")
        assert run.bit_identical is True
        assert run.dispatch_identical is True
        assert run.lemmas_ok is True
        text = format_shard_campaign(report)
        assert "SHARD CAMPAIGN OK" in text

    def test_campaign_is_deterministic_in_plans(self):
        a = run_shard_campaign(7, 1, jobs=8, machines=2, workers=1, kills=1,
                               shard_hold=0.05)
        b = run_shard_campaign(7, 1, jobs=8, machines=2, workers=1, kills=1,
                               shard_hold=0.05)
        assert a.outcomes[0].plan == b.outcomes[0].plan
        assert a.outcomes[0].bit_identical and b.outcomes[0].bit_identical
