"""Sharded execution of the parallel-machine families (§6, Lemma 20).

Lemma 20 makes NC-PAR's global-FIFO assignment identical to C-PAR's greedy
immediate dispatch, and — the property this module rests on — makes every
per-machine simulation *fully independent after dispatch*: a machine's
schedule is a function of its own assigned job list alone (the speed-rule
offset is the machine-local shadow run's ``W^C(r[j]-)``, and the start-time
chain ``start_k = max(r_k, end_{k-1})`` never reads another machine's
clock).  So the expensive half of a cluster run — per-machine simulation
plus exact cost evaluation with validation — shards cleanly:

1. the coordinator runs the (cheap, closed-form) dispatch to fix the
   assignment and build the reference :class:`~repro.parallel.cluster.ClusterRun`;
2. machines are partitioned into shards (:func:`plan_shards`, LPT on
   machine weight so shards are balanced);
3. each shard is computed by :func:`compute_shard` — a pure function of the
   shard payload, run either in a supervised
   :class:`~repro.runtime.pool.WorkerPool` worker or serially — which
   *re-derives* every per-machine schedule from the job list (NC-PAR's
   recurrence, or C-PAR's per-machine Algorithm C) and evaluates it exactly;
4. per-machine reports are merged **in machine-index order**, the same
   float-addition order :meth:`ClusterRun.report` uses — so the sharded
   report is bit-identical to the serial one, not merely close.

Durable per-shard checkpoints (:class:`ShardCheckpointStore`) let an
interrupted campaign resume instead of recompute: results are stored as
canonical JSON plus a SHA-256 checksum, and a corrupted checkpoint (the
``checkpoint_corruption`` fault kind writes one deliberately) is detected on
load, discarded, and recomputed — never trusted.

Caveat: shard workers re-derive schedules from the *true* job volumes, so
instance-level fault channels (``volume_filter`` etc.) installed on the
coordinator's context do not propagate into workers.  Sharded runs are
meant for the process-level fault model (``worker_kill``, ``shard_hang``,
``checkpoint_corruption``); combine them with instance faults only through
:func:`~repro.faults.injector.FaultInjector.perturb_instance`, which bakes
the perturbation into the instance itself.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from ..algorithms.clairvoyant import simulate_clairvoyant
from ..core.errors import InvalidInstanceError, SimulationError
from ..core.job import Instance, Job
from ..core.kernels import growth_time_between
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerLaw
from ..core.schedule import GrowthSegment, Schedule, ScheduleBuilder
from ..core.shadow import SimulationContext
from .c_par import simulate_c_par
from .cluster import ClusterRun
from .nc_par import simulate_nc_par

if TYPE_CHECKING:
    from ..analysis.trace_report import TraceReport
    from ..core.tracing import TraceEvent
    from ..faults.injector import FaultInjector
    from ..runtime.pool import PoolPolicy, PoolStats

__all__ = [
    "Shard",
    "ShardedResult",
    "ShardCheckpointStore",
    "plan_shards",
    "compute_shard",
    "run_sharded",
    "verify_shard_trace",
]

ALGORITHMS = ("nc_par", "c_par")


@dataclass(frozen=True, slots=True)
class Shard:
    """One unit of pool work: a set of machines evaluated together."""

    shard_id: int
    machines: tuple[int, ...]


@dataclass(frozen=True)
class ShardedResult:
    """Outcome of :func:`run_sharded`.

    ``report`` is bit-identical to ``cluster.report()`` by construction;
    ``resumed`` counts shards restored from durable checkpoints instead of
    recomputed, ``stats`` is the pool's lifecycle ledger (``None`` when the
    run was forced serial).
    """

    cluster: ClusterRun
    report: CostReport
    shards: tuple[Shard, ...]
    resumed: int
    stats: "PoolStats | None"


def plan_shards(assignments: dict[int, list[int]], n_shards: int) -> tuple[Shard, ...]:
    """Partition the loaded machines into at most ``n_shards`` balanced shards.

    Longest-processing-time on job count: machines are sorted by descending
    load and each lands on the lightest shard, so no shard dominates the
    pool's critical path.  Empty machines are not sharded at all.
    """
    if n_shards < 1:
        raise InvalidInstanceError(f"n_shards must be >= 1, got {n_shards}")
    loaded = [(len(jobs), m) for m, jobs in assignments.items() if jobs]
    if not loaded:
        raise InvalidInstanceError("no machine has any jobs to shard")
    n_shards = min(n_shards, len(loaded))
    bins: list[tuple[int, list[int]]] = [(0, []) for _ in range(n_shards)]
    for load, machine in sorted(loaded, key=lambda lm: (-lm[0], lm[1])):
        idx = min(range(n_shards), key=lambda i: (bins[i][0], i))
        total, members = bins[idx]
        members.append(machine)
        bins[idx] = (total + load, members)
    return tuple(
        Shard(shard_id=i, machines=tuple(sorted(members)))
        for i, (_, members) in enumerate(bins)
        if members
    )


# -- payloads: everything crossing the process boundary is plain data --------


def shard_payload(
    shard: Shard,
    cluster: ClusterRun,
    *,
    algorithm: str,
    validate: bool = True,
    hold_s: float = 0.0,
) -> dict[str, Any]:
    """The picklable/JSON-able work order for one shard.

    ``hold_s`` is a synthetic per-shard duration (a sleep before the
    computation) used by chaos campaigns to model long-running shards: it
    guarantees a scheduled ``worker_kill`` lands *mid-shard*, so the kill
    actually loses work and the recovery path (re-dispatch) is exercised
    rather than raced past.
    """
    if algorithm not in ALGORITHMS:
        raise InvalidInstanceError(f"unknown shard algorithm {algorithm!r}")
    alpha = getattr(cluster.power, "alpha", None)
    if alpha is None:
        raise InvalidInstanceError("sharded execution requires a PowerLaw power model")
    jobs: dict[str, list[list[float]]] = {}
    for machine in shard.machines:
        assigned = cluster.assignments[machine]
        jobs[str(machine)] = [
            [float(j), cluster.instance[j].release, cluster.instance[j].volume, cluster.instance[j].density]
            for j in assigned
        ]
    payload: dict[str, Any] = {
        "shard_id": shard.shard_id,
        "algorithm": algorithm,
        "alpha": float(alpha),
        "jobs": jobs,
        "validate": bool(validate),
    }
    if hold_s > 0.0:
        payload["hold_s"] = float(hold_s)
    return payload


def _report_payload(report: CostReport) -> dict[str, Any]:
    return {
        "energy": report.energy,
        "fractional_flow_by_job": {str(k): v for k, v in report.fractional_flow_by_job.items()},
        "integral_flow_by_job": {str(k): v for k, v in report.integral_flow_by_job.items()},
        "completion_times": {str(k): v for k, v in report.completion_times.items()},
    }


def _report_from_payload(raw: dict[str, Any]) -> CostReport:
    return CostReport(
        energy=float(raw["energy"]),
        fractional_flow_by_job={int(k): float(v) for k, v in raw["fractional_flow_by_job"].items()},
        integral_flow_by_job={int(k): float(v) for k, v in raw["integral_flow_by_job"].items()},
        completion_times={int(k): float(v) for k, v in raw["completion_times"].items()},
    )


def _machine_schedule_nc(jobs: list[Job], alpha: float) -> Schedule:
    """NC-PAR's machine-local schedule, re-derived from the assigned list.

    Exactly the float operations of :func:`~repro.parallel.nc_par.simulate_nc_par`
    restricted to one machine: the global FIFO hands this machine its jobs in
    release order, the offset is the machine-local shadow's ``W^C(r[j]-)``,
    and the start-time chain only reads this machine's own clock — Lemma
    20's independence, executable.
    """
    context = SimulationContext(PowerLaw(alpha))
    oracle = context.prefix_oracle()
    builder = ScheduleBuilder()
    free = 0.0
    first = True
    for job in jobs:
        start = max(job.release, free)
        offset = 0.0 if first else oracle.weight_at(job.release)
        tau = growth_time_between(offset, offset + job.weight, job.density, alpha)
        builder.append(
            GrowthSegment(start, start + tau, job.job_id, offset, job.density, alpha)
        )
        oracle.add_job(job.job_id, job.release, job.density, job.volume)
        free = start + tau
        first = False
    return builder.build()


def compute_shard(payload: dict[str, Any]) -> dict[str, Any]:
    """Compute one shard: per-machine schedules re-derived and evaluated.

    A pure function of its payload — the same bytes in give the same bytes
    out whether it runs in a pool worker, a serial fallback, or a resumed
    campaign.  This purity is what makes re-dispatch and checkpoint-resume
    sound.
    """
    hold = float(payload.get("hold_s", 0.0) or 0.0)
    if hold > 0.0:
        time.sleep(hold)
    alpha = float(payload["alpha"])
    algorithm = payload["algorithm"]
    validate = bool(payload.get("validate", True))
    power = PowerLaw(alpha)
    reports: dict[str, dict[str, Any]] = {}
    for key, raw_jobs in payload["jobs"].items():
        jobs = [
            Job(job_id=int(j), release=r, volume=v, density=d)
            for j, r, v, d in raw_jobs
        ]
        sub = Instance(jobs)
        if algorithm == "nc_par":
            ordered = sorted(jobs, key=lambda j: (j.release, j.job_id))
            schedule = _machine_schedule_nc(ordered, alpha)
        elif algorithm == "c_par":
            schedule = simulate_clairvoyant(sub, power).schedule
        else:
            raise SimulationError(f"unknown shard algorithm {algorithm!r}")
        reports[key] = _report_payload(evaluate(schedule, sub, power, validate=validate))
    return {"shard_id": payload["shard_id"], "reports": reports}


# -- durable checkpoints ------------------------------------------------------


class ShardCheckpointStore:
    """Durable per-shard results: canonical JSON + SHA-256, trust nothing.

    Files are keyed by a run fingerprint (instance + algorithm + alpha +
    machine count), so a store directory can be shared across campaigns
    without one run resuming another's shards.  ``load`` verifies the
    checksum and *discards* (deletes) any mismatching file — a corrupted
    checkpoint costs a recompute, never a wrong number.  The
    ``checkpoint_corruption`` fault kind is realised in ``save``: the body
    is damaged after the checksum is taken, exactly the torn-write failure
    the checksum exists to catch.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        context: SimulationContext | None = None,
        injector: "FaultInjector | None" = None,
        component: str = "shard.ckpt",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.context = context
        self.injector = injector
        self.component = component
        self._saves = 0

    @staticmethod
    def run_key(cluster: ClusterRun, algorithm: str) -> str:
        """Fingerprint of everything a shard result depends on."""
        alpha = getattr(cluster.power, "alpha", 0.0)
        canon = json.dumps(
            {
                "algorithm": algorithm,
                "alpha": alpha,
                "machines": cluster.machines,
                "jobs": [
                    [j.job_id, j.release, j.volume, j.density]
                    for j in cluster.instance
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    def _path(self, run_key: str, shard_id: int) -> Path:
        return self.directory / f"shard-{run_key}-{shard_id}.json"

    def _emit(self, action: str, shard_id: int, **extra: Any) -> None:
        if self.context is not None:
            self.context.emit(
                "shard_checkpoint", 0.0, self.component,
                action=action, shard=shard_id, **extra,
            )

    def save(self, run_key: str, shard_id: int, result: dict[str, Any]) -> Path:
        body = json.dumps(result, sort_keys=True)
        checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if self.injector is not None and self.injector.armed_specs("checkpoint_corruption"):
            self._saves += 1
            spec = self.injector.armed_specs("checkpoint_corruption")[0]
            if self._saves >= max(spec.after_calls, 1):
                self.injector.fire_external(
                    "checkpoint_corruption", 0.0, shard=shard_id
                )
                # Torn write: flip a character inside the body after the
                # checksum was taken.
                mid = len(body) // 2
                body = body[:mid] + ("0" if body[mid] != "0" else "1") + body[mid + 1 :]
        path = self._path(run_key, shard_id)
        path.write_text(
            json.dumps({"checksum": checksum, "body": body}), encoding="utf-8"
        )
        self._emit("save", shard_id, path=str(path))
        return path

    def load(self, run_key: str, shard_id: int) -> dict[str, Any] | None:
        path = self._path(run_key, shard_id)
        if not path.exists():
            return None
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
            body = wrapper["body"]
            ok = hashlib.sha256(body.encode("utf-8")).hexdigest() == wrapper["checksum"]
            result: dict[str, Any] | None = json.loads(body) if ok else None
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
            result = None
        if result is None:
            # Checksum or structure mismatch: the file lies; remove it.
            path.unlink(missing_ok=True)
            self._emit("corrupt_discard", shard_id, path=str(path))
            return None
        self._emit("resume", shard_id, path=str(path))
        return result


# -- the sharded run ----------------------------------------------------------


def run_sharded(
    instance: Instance,
    power: PowerLaw,
    machines: int,
    *,
    algorithm: str = "nc_par",
    n_shards: int | None = None,
    policy: "PoolPolicy | None" = None,
    context: SimulationContext | None = None,
    injector: "FaultInjector | None" = None,
    checkpoint_dir: str | Path | None = None,
    validate: bool = True,
    force_serial: bool = False,
    shard_hold: float = 0.0,
) -> ShardedResult:
    """Run a parallel family sharded, with supervision and checkpoints.

    The coordinator fixes the dispatch (building the reference
    :class:`ClusterRun`), plans shards, resumes any shard whose durable
    checkpoint verifies, runs the rest on a supervised
    :class:`~repro.runtime.pool.WorkerPool` (or serially under
    ``force_serial``), saves fresh results, and merges the per-machine
    reports in machine-index order.  The merged report is bit-identical to
    ``cluster.report()`` — the differential test in ``tests/test_shard.py``
    holds this exactly, not to a tolerance.
    """
    if algorithm not in ALGORITHMS:
        raise InvalidInstanceError(f"unknown shard algorithm {algorithm!r}")
    if context is None:
        context = SimulationContext(power)
    if algorithm == "nc_par":
        cluster = simulate_nc_par(instance, power, machines, context=context)
    else:
        cluster = simulate_c_par(instance, power, machines)

    shards = plan_shards(
        cluster.assignments,
        n_shards if n_shards is not None else _default_shards(cluster, policy),
    )
    store = (
        ShardCheckpointStore(checkpoint_dir, context=context, injector=injector)
        if checkpoint_dir is not None
        else None
    )
    run_key = ShardCheckpointStore.run_key(cluster, algorithm) if store else ""

    results: dict[int, dict[str, Any]] = {}
    resumed = 0
    todo: list[Shard] = []
    for shard in shards:
        cached = store.load(run_key, shard.shard_id) if store else None
        if cached is not None:
            results[shard.shard_id] = cached
            resumed += 1
        else:
            todo.append(shard)

    stats: "PoolStats | None" = None
    if todo:
        payloads = [
            (
                s.shard_id,
                shard_payload(
                    s, cluster, algorithm=algorithm, validate=validate, hold_s=shard_hold
                ),
            )
            for s in todo
        ]
        if force_serial:
            for shard_id, payload in payloads:
                results[shard_id] = compute_shard(payload)
        else:
            from ..runtime.pool import WorkerPool

            pool = WorkerPool(policy, context=context, injector=injector)
            fresh = pool.run(payloads, "repro.parallel.shard", "compute_shard")
            stats = pool.stats
            results.update(fresh)
        if store is not None:
            for shard_id, _ in payloads:
                store.save(run_key, shard_id, results[shard_id])

    # Merge in machine-index order — the exact float-addition order of
    # ClusterRun.report(), which is what makes the merge bit-identical.
    by_machine: dict[int, CostReport] = {}
    for shard in shards:
        reports = results[shard.shard_id]["reports"]
        for key, raw in reports.items():
            by_machine[int(key)] = _report_from_payload(raw)
    merged: CostReport | None = None
    for machine, jobs in cluster.assignments.items():
        if not jobs:
            continue
        rep = by_machine[machine]
        merged = rep if merged is None else merged.merged_with(rep)
    assert merged is not None  # plan_shards refuses an all-empty cluster
    return ShardedResult(
        cluster=cluster,
        report=merged,
        shards=shards,
        resumed=resumed,
        stats=stats,
    )


def _default_shards(cluster: ClusterRun, policy: "PoolPolicy | None") -> int:
    loaded = sum(1 for jobs in cluster.assignments.values() if jobs)
    workers = policy.workers if policy is not None else 2
    return max(1, min(loaded, workers * 2))


def verify_shard_trace(
    source: "str | Path | Iterable[TraceEvent]", *, rel_tol: float = 1e-9
) -> "TraceReport":
    """Re-verify a sharded run's written trace in one bounded-memory pass.

    ``source`` is a trace path (plain JSONL, gzip, or a sequence of rotated
    segments via a path-to-first-segment's siblings) or any event iterable —
    typically the JSONL a supervised sharded run recorded, including its
    ``worker_lost`` / ``shard_redispatch`` lifecycle events and the traced
    single-machine (C, NC) pair.  The Lemma 3/4 replay, ordering contract
    and per-component stats come back as a
    :class:`~repro.analysis.trace_report.TraceReport` built by the streaming
    aggregators, so campaign-scale traces verify without materializing the
    event list.
    """
    from ..analysis.trace_report import build_report
    from ..core.tracing import iter_trace

    if isinstance(source, (str, Path)):
        events: Iterable[TraceEvent] = iter_trace(source)
    else:
        events = source
    return build_report(events, rel_tol=rel_tol)
