"""The §5 black-box reduction from fractional to integral flow-time (Lemma 15).

Given *any* schedule produced by an algorithm ``A_frac``, define ``A_int``:
whenever ``A_frac`` processes job ``j`` at speed ``s``, ``A_int`` processes the
same job at speed ``(1+eps)*s`` — unless ``A_int`` has already completed ``j``,
in which case it idles.  Consequences proved in the paper and asserted by the
test-suite:

* the weight of ``j`` processed by ``A_int`` is always ``min((1+eps) * (weight
  processed by A_frac), W[j])`` — so ``A_int`` finishes ``j`` exactly when
  ``A_frac`` has processed a ``1/(1+eps)`` fraction of it;
* energy(``A_int``) <= ``(1+eps)**alpha`` * energy(``A_frac``);
* integral flow(``A_int``) <= ``(1 + 1/eps)`` * fractional flow(``A_frac``).

The construction is purely schedule-level, so it applies to Algorithm NC
(uniform or general) unchanged and preserves non-clairvoyance: ``A_int`` only
mirrors what ``A_frac`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ScheduleError
from ..core.job import Instance
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerFunction
from ..core.schedule import ScaledSegment, Schedule

__all__ = ["to_integral_schedule", "IntegralConversion", "convert", "convert_run"]

_TOL = 1e-9


def to_integral_schedule(schedule: Schedule, instance: Instance, epsilon: float) -> Schedule:
    """The ``A_int`` schedule induced by an ``A_frac`` schedule (Lemma 15)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    factor = 1.0 + epsilon
    done: dict[int, float] = {j.job_id: 0.0 for j in instance}
    out = []
    for seg in schedule:
        if seg.job_id is None:
            continue  # idle stays idle (gaps are implicit)
        if seg.job_id not in done:
            raise ScheduleError(f"segment references unknown job {seg.job_id}")
        volume = instance[seg.job_id].volume
        room = volume - done[seg.job_id]
        if room <= _TOL * max(1.0, volume):
            continue  # A_int already finished this job: idle through the slot
        boosted = factor * seg.volume()
        if boosted <= room * (1 + _TOL):
            out.append(ScaledSegment(seg.t0, seg.t1, seg.job_id, seg, factor))
            done[seg.job_id] += boosted
        else:
            # A_int completes the job inside this slot; cut at the crossing.
            tau = seg.time_to_volume(room / factor)
            sub = seg.subsegment(0.0, tau)
            out.append(ScaledSegment(sub.t0, sub.t1, seg.job_id, sub, factor))
            done[seg.job_id] = volume
    return Schedule(out)


@dataclass(frozen=True)
class IntegralConversion:
    """Both sides of the reduction, evaluated."""

    epsilon: float
    fractional_schedule: Schedule
    integral_schedule: Schedule
    fractional_report: CostReport
    integral_report: CostReport

    @property
    def energy_ratio(self) -> float:
        """Measured energy(A_int) / energy(A_frac); Lemma 15 bounds it by
        ``(1+eps)**alpha``."""
        return self.integral_report.energy / self.fractional_report.energy

    @property
    def flow_ratio(self) -> float:
        """Measured integral flow(A_int) / fractional flow(A_frac); Lemma 15
        bounds it by ``1 + 1/eps``."""
        return self.integral_report.integral_flow / self.fractional_report.fractional_flow


def convert(
    schedule: Schedule, instance: Instance, power: PowerFunction, epsilon: float
) -> IntegralConversion:
    """Apply the reduction and evaluate both schedules."""
    integral = to_integral_schedule(schedule, instance, epsilon)
    return IntegralConversion(
        epsilon=epsilon,
        fractional_schedule=schedule,
        integral_schedule=integral,
        fractional_report=evaluate(schedule, instance, power),
        integral_report=evaluate(integral, instance, power),
    )


def convert_run(run, epsilon: float) -> IntegralConversion:
    """Apply the reduction to a simulator outcome.

    Accepts any run object exposing ``schedule``, ``instance`` and ``power``
    (:class:`~repro.algorithms.clairvoyant.ClairvoyantRun`,
    :class:`~repro.algorithms.nc_uniform.NCUniformRun`,
    :class:`~repro.algorithms.nc_general.NCGeneralRun`, …), so callers need
    not unpack the triple themselves."""
    return convert(run.schedule, run.instance, run.power, epsilon)
