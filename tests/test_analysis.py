"""Tests for the analysis harness: ratios, curves, preemption intervals,
rendering and Table 1 assembly."""

from __future__ import annotations

import pytest

from repro import Instance, Job
from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.analysis import (
    empirical_ratio,
    format_ascii_chart,
    format_table,
    nonuniform_suite,
    power_curve,
    preemption_intervals,
    processed_weight_curve,
    remaining_weight_curve,
    run_algorithm,
    speed_curve,
    theoretical_bound,
    uniform_suite,
)
from repro.analysis.tables import build_table1


class TestRunAlgorithm:
    @pytest.mark.parametrize("name", ["C", "NC", "ACTIVE_COUNT", "CONSTANT_SPEED"])
    def test_uniform_algorithms_run(self, cube, three_jobs, name):
        rep = run_algorithm(name, three_jobs, cube)
        assert rep.energy >= 0
        assert set(rep.completion_times) == set(three_jobs.job_ids)

    def test_nc_general_runs(self, cube, mixed_density_jobs):
        rep = run_algorithm("NC_GENERAL", mixed_density_jobs, cube, max_step=2e-2)
        assert set(rep.completion_times) == set(mixed_density_jobs.job_ids)

    def test_integral_variants(self, cube, three_jobs):
        rep = run_algorithm("NC_INT", three_jobs, cube, conversion_epsilon=0.5)
        assert rep.integral_objective > 0

    def test_unknown_name(self, cube, three_jobs):
        with pytest.raises(ValueError):
            run_algorithm("WAT", three_jobs, cube)


class TestEmpiricalRatio:
    def test_c_is_2_competitive_fractional(self, cube, three_jobs):
        res = empirical_ratio("C", three_jobs, cube, slots=200, iterations=800)
        assert 1.0 <= res.ratio <= 2.0 + 1e-9

    def test_nc_within_theorem5(self, cube, three_jobs):
        res = empirical_ratio("NC", three_jobs, cube, slots=200, iterations=800)
        assert res.ratio <= 2.0 + 1.0 / (3.0 - 1.0) + 1e-9

    def test_integral_objective_choice(self, cube, three_jobs):
        res = empirical_ratio("NC", three_jobs, cube, objective="integral", slots=150, iterations=600)
        assert res.objective == "integral"
        assert res.ratio <= 3.0 + 0.5 + 1e-9

    def test_rejects_bad_objective(self, cube, three_jobs):
        with pytest.raises(ValueError):
            empirical_ratio("NC", three_jobs, cube, objective="both")


class TestCurves:
    def test_power_curve_single_job_c_decreasing(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        run = simulate_clairvoyant(inst, cube)
        curve = power_curve(run.schedule, cube, samples=64)
        assert curve.values[0] == pytest.approx(2.0, rel=1e-6)  # P = W at t=0
        assert all(a >= b - 1e-9 for a, b in zip(curve.values, curve.values[1:]))

    def test_power_curve_single_job_nc_increasing_then_done(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        run = simulate_nc_uniform(inst, cube)
        curve = power_curve(run.schedule, cube, samples=64)
        assert curve.values[0] == pytest.approx(0.0, abs=1e-6)
        assert curve.values[-1] == pytest.approx(2.0, rel=1e-2)

    def test_nc_power_curve_is_c_reversed(self, cube):
        """Fig 1: the NC power curve is the C curve in reverse."""
        inst = Instance([Job(0, 0.0, 2.0)])
        c = power_curve(simulate_clairvoyant(inst, cube).schedule, cube, samples=65)
        nc = power_curve(simulate_nc_uniform(inst, cube).schedule, cube, samples=65)
        for a, b in zip(nc.values, c.values[::-1]):
            assert a == pytest.approx(b, rel=1e-6, abs=1e-9)

    def test_remaining_weight_curve(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube)
        curve = remaining_weight_curve(run.schedule, three_jobs, samples=64)
        assert curve.values[0] == pytest.approx(4.0)
        assert curve.values[-1] == pytest.approx(0.0, abs=1e-6)

    def test_processed_weight_curve_monotone(self, cube, three_jobs):
        run = simulate_nc_uniform(three_jobs, cube)
        curve = processed_weight_curve(run.schedule, three_jobs, samples=64)
        assert all(b >= a - 1e-9 for a, b in zip(curve.values, curve.values[1:]))
        assert curve.values[-1] == pytest.approx(three_jobs.total_weight, rel=1e-6)

    def test_speed_curve_and_area(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        curve = speed_curve(simulate_clairvoyant(inst, cube).schedule, samples=2000)
        assert curve.area() == pytest.approx(2.0, rel=1e-2)  # ∫s = volume


class TestPreemptionIntervals:
    def make_run(self, cube):
        # j* = job 0 (low density); two higher-density arrivals preempt it.
        inst = Instance(
            [
                Job(0, 0.0, 4.0, 1.0),
                Job(1, 0.5, 0.5, 10.0),
                Job(2, 2.0, 0.5, 10.0),
            ]
        )
        return inst, simulate_clairvoyant(inst, cube)

    def test_two_intervals_found(self, cube):
        inst, run = self.make_run(cube)
        ivs = preemption_intervals(run, 0)
        assert len(ivs) == 2
        assert ivs[0].start == pytest.approx(0.5)
        assert ivs[1].start == pytest.approx(2.0)

    def test_volumes_match_preempting_jobs(self, cube):
        inst, run = self.make_run(cube)
        ivs = preemption_intervals(run, 0)
        assert ivs[0].volume == pytest.approx(0.5, rel=1e-9)
        assert ivs[0].preempting_jobs == (1,)

    def test_weight_before_is_left_limit(self, cube):
        inst, run = self.make_run(cube)
        ivs = preemption_intervals(run, 0)
        # W just before the release of job 1 excludes job 1's weight.
        assert ivs[0].weight_before == pytest.approx(
            run.remaining_weight_at(0.5, include_release_at_t=False), rel=1e-12
        )

    def test_no_intervals_for_highest_density(self, cube):
        inst, run = self.make_run(cube)
        assert preemption_intervals(run, 1) == []

    def test_equal_density_not_preemption(self, cube):
        inst = Instance([Job(0, 0.0, 2.0), Job(1, 0.5, 1.0)])
        run = simulate_clairvoyant(inst, cube)
        assert preemption_intervals(run, 0) == []


class TestRendering:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["a", 1.0], ["bb", 22.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "22.5" in lines[-1]

    def test_format_table_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_ascii_chart_contains_series(self):
        out = format_ascii_chart(
            [("up", [0, 1, 2], [0, 1, 2]), ("down", [0, 1, 2], [2, 1, 0])],
            width=20,
            height=8,
            title="chart",
        )
        assert "chart" in out
        assert "up" in out and "down" in out
        assert "*" in out and "o" in out

    def test_ascii_chart_flat_series(self):
        out = format_ascii_chart([("flat", [0, 1], [1, 1])], width=10, height=4)
        assert "flat" in out


class TestSuitesAndTable:
    def test_uniform_suite_all_uniform(self):
        for name, inst in uniform_suite(n=6, seeds=(1,)):
            assert inst.is_uniform_density(), name

    def test_nonuniform_suite_has_density_spread(self):
        assert any(
            not inst.is_uniform_density() for _, inst in nonuniform_suite(n=5, seeds=(1,))
        )

    def test_theoretical_bounds(self):
        assert theoretical_bound("fractional", "unit", 3.0) == pytest.approx(2.5)
        assert theoretical_bound("integral", "unit", 3.0) == pytest.approx(3.5)
        assert theoretical_bound("fractional", "arbitrary", 3.0) is None

    def test_build_table1_small(self):
        rows = build_table1(
            3.0, uniform_n=6, nonuniform_n=4, seeds=(1,), slots=120, iterations=400, max_step=5e-2
        )
        assert len(rows) == 4
        for row in rows:
            assert row.measured_max > 0
            if row.theoretical is not None:
                assert row.measured_max <= row.theoretical + 1e-6
