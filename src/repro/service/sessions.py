"""Multi-tenant scheduling sessions and sharded campaigns.

A :class:`Session` is the non-clairvoyant model made operational: jobs
arrive over time with unknown-to-the-algorithm sizes, streamed in through a
*bounded* queue (the backpressure boundary), and the session answers live
queries — current speeds from an incrementally-advanced
:class:`~repro.core.shadow.ClairvoyantShadow`, full schedules/metrics/Gantt
data by running the session's algorithm over the arrivals received so far,
and verified reports that replay a traced (C, NC) pair through the
streaming Lemma 3/4 verifier.

Concurrency model: every session owns one ``asyncio.Lock``; all state
mutation (queue drain into the shadow, schedule computation) happens under
it, so interleaved requests against different sessions never share mutable
state and interleaved requests against one session serialize.  Determinism
is the contract the differential tests pin: a session fed jobs through the
API yields schedules **bit-identical** to driving the same instance through
:class:`~repro.core.shadow.SimulationContext` directly.

Tracing: a session created with ``trace_path`` routes every shadow/algorithm
event through a per-session :class:`~repro.core.tracing.JsonlRecorder`
(any ``plain | gzip | rotate:N`` sink).  :meth:`Session.close` — reached by
``DELETE``, manager shutdown, or server stop — flushes and closes the sink,
so traces survive any graceful exit path.

Durability: a manager created with ``journal_dir`` write-ahead journals
every session (create request + each committed arrival batch, canonical
JSON + SHA-256 per line, flushed *before* the submit ack) through
:class:`~repro.service.journal.SessionJournal`.  After a crash,
:meth:`SessionManager.restore` replays each journal through the normal
``create``/``submit`` drive — because the simulators are deterministic and
NC needs only released weights, the restored session's speeds, schedules,
metrics, and verified reports are **bit-identical** to an uninterrupted
twin's.  The store is bounded: ``max_sessions`` caps admission (503 when
full), ``session_ttl``/``evict_lru`` evict idle sessions (journaling a
``session_evicted`` record; the id answers 410 Gone, distinct from 404),
``campaign_retention`` prunes finished campaigns (410 with the final status
summarized), and ``create_rate`` token-buckets session creation per client
key (429 with Retry-After).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..algorithms import simulate_clairvoyant, simulate_nc_general, simulate_nc_uniform
from ..analysis.trace_report import TraceReport, build_report
from ..core.errors import InvalidInstanceError, SimulationError
from ..core.job import Instance, Job
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerLaw
from ..core.schedule import Schedule
from ..core.shadow import SimulationContext
from ..core.tracing import NULL_RECORDER, JsonlRecorder, MemoryRecorder, TraceRecorder
from .journal import (
    JournalCorruption,
    JournalError,
    JournalWriteAborted,
    SessionJournal,
    discover_journals,
    journal_path,
    read_journal,
)
from .models import CampaignRequest, SessionCreateRequest

__all__ = [
    "Backpressure",
    "SessionClosed",
    "SessionGone",
    "StoreFull",
    "CampaignPruned",
    "RateLimited",
    "TokenBucket",
    "RestoreReport",
    "Session",
    "Campaign",
    "SessionManager",
    "simulate_session_algorithm",
]


class Backpressure(Exception):
    """The arrival batch would overflow the session's bounded queue."""

    def __init__(self, depth: int, limit: int, batch: int) -> None:
        super().__init__(
            f"queue at depth {depth}/{limit} cannot absorb a batch of {batch}; "
            "retry after the backlog drains"
        )
        self.depth = depth
        self.limit = limit
        self.batch = batch


class SessionClosed(Exception):
    """The session was closed; no further arrivals or queries."""


class SessionGone(Exception):
    """The session existed but was evicted (TTL/LRU) — 410, not 404."""

    def __init__(self, session_id: str, reason: str) -> None:
        super().__init__(
            f"session {session_id!r} was evicted ({reason}); its id is gone — "
            "create a new session to continue"
        )
        self.session_id = session_id
        self.reason = reason


class StoreFull(Exception):
    """The session store is at its admission limit — 503."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"session store is full ({limit} sessions); retry after a session "
            "closes or is evicted"
        )
        self.limit = limit


class CampaignPruned(Exception):
    """The campaign finished and was pruned past retention — 410 with its
    final status summarized."""

    def __init__(self, campaign_id: str, summary: dict[str, Any]) -> None:
        super().__init__(
            f"campaign {campaign_id!r} finished as {summary.get('state')!r} and "
            "was pruned past the retention window"
        )
        self.campaign_id = campaign_id
        self.summary = summary


class RateLimited(Exception):
    """The per-client session-create token bucket is empty — 429."""

    def __init__(self, client_key: str, retry_after: float) -> None:
        super().__init__(
            f"session-create rate limit exceeded for client {client_key!r}; "
            f"retry after {retry_after:.2f}s"
        )
        self.client_key = client_key
        self.retry_after = retry_after


class TokenBucket:
    """Per-key token buckets: ``burst`` capacity refilled at ``rate``/s.

    ``check(key)`` consumes one token and returns 0.0, or — when the bucket
    is empty — returns the seconds until a token accrues, consuming nothing.
    Deterministic under an injected ``clock`` (tests and the chaos campaign
    pass a fake one).
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # key -> (tokens, at)

    def check(self, key: str) -> float:
        now = self._clock()
        tokens, at = self._buckets.get(key, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - at) * self.rate)
        if tokens >= 1.0:
            self._buckets[key] = (tokens - 1.0, now)
            return 0.0
        self._buckets[key] = (tokens, now)
        return (1.0 - tokens) / self.rate


@dataclass
class RestoreReport:
    """What :meth:`SessionManager.restore` found and did."""

    restored: list[str] = field(default_factory=list)
    closed: list[str] = field(default_factory=list)
    evicted: list[str] = field(default_factory=list)
    #: journals that failed integrity checks, quarantined: sid -> error
    skipped: dict[str, str] = field(default_factory=dict)


def simulate_session_algorithm(
    name: str,
    instance: Instance,
    power: PowerLaw,
    *,
    context: SimulationContext | None = None,
    max_step: float = 2e-2,
) -> Schedule:
    """Run a session-servable algorithm, threading the trace context through.

    This is the exact call the differential test mirrors: driving the same
    instance through a fresh :class:`SimulationContext` directly must yield a
    bit-identical schedule.
    """
    if name == "C":
        return simulate_clairvoyant(instance, power, context=context).schedule
    if name == "NC":
        return simulate_nc_uniform(instance, power, context=context).schedule
    if name == "NC_GENERAL":
        return simulate_nc_general(
            instance, power, context=context, max_step=max_step
        ).schedule
    raise InvalidInstanceError(f"unknown session algorithm {name!r}")


class Session:
    """One live scheduling session (see module docstring).

    All public coroutines acquire :attr:`lock`; synchronous helpers prefixed
    ``_`` assume it is held.
    """

    def __init__(
        self,
        session_id: str,
        request: SessionCreateRequest,
        *,
        journal: SessionJournal | None = None,
    ) -> None:
        self.session_id = session_id
        self.journal = journal
        self.algorithm = request.algorithm
        self.power = PowerLaw(request.alpha)
        self.max_step = request.max_step
        self.queue_limit = request.queue_limit
        self.recorder: TraceRecorder = (
            JsonlRecorder(request.trace_path, sink=request.sink)
            if request.trace_path
            else NULL_RECORDER
        )
        self.context = SimulationContext(
            self.power, recorder=self.recorder, backend=request.backend
        )
        self.context.emit(
            "run_meta",
            0.0,
            "service",
            alpha=request.alpha,
            session=session_id,
            algorithms=[request.algorithm],
        )
        #: Algorithm C's live state over the arrivals so far — the substrate
        #: of the speeds endpoint.  Advanced monotonically to each arrival's
        #: release, never rolled back.
        self.shadow = self.context.shadow(component="service.shadow")
        self.lock = asyncio.Lock()
        self.queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=request.queue_limit)
        self.jobs: list[Job] = []
        self.jobs_accepted = 0
        self.closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def clock(self) -> float:
        return self.shadow.clock

    @property
    def trace_paths(self) -> list[str]:
        rec = self.recorder
        return [str(p) for p in rec.paths] if isinstance(rec, JsonlRecorder) else []

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosed(f"session {self.session_id!r} is closed")

    async def close(
        self, *, record: bool = True, evict_reason: str | None = None
    ) -> None:
        """Flush and close the session's trace sink and journal; idempotent.

        ``record=True`` (explicit DELETE) journals a terminal
        ``session_close`` record, so a restart does not resurrect a
        deliberately closed session.  ``record=False`` (service shutdown) is
        *suspension*: the journal closes without a terminal record and the
        session restores on the next start.  ``evict_reason`` journals a
        ``session_evicted`` record instead and emits the matching trace
        event — the id answers 410 afterwards.
        """
        async with self.lock:
            if self.closed:
                return
            self.closed = True
            if evict_reason is not None:
                self.context.emit(
                    "session_evicted",
                    self.clock,
                    "service",
                    session=self.session_id,
                    reason=evict_reason,
                    jobs=self.jobs_accepted,
                )
            self.context.emit(
                "session_close",
                self.clock,
                "service",
                session=self.session_id,
                jobs=self.jobs_accepted,
            )
            if self.journal is not None:
                try:
                    if evict_reason is not None:
                        self.journal.append(
                            {
                                "record": "session_evicted",
                                "session": self.session_id,
                                "reason": evict_reason,
                            }
                        )
                    elif record:
                        self.journal.append(
                            {"record": "session_close", "session": self.session_id}
                        )
                finally:
                    self.journal.close()
            if isinstance(self.recorder, JsonlRecorder):
                self.recorder.close()

    # -- arrivals -------------------------------------------------------------

    async def submit(self, jobs: list[Job]) -> int:
        """Stream a batch of arrivals in; returns the number accepted.

        Batches are all-or-nothing: the whole batch is vetted under the lock
        *before* any state mutation — if it would overflow the bounded queue
        the request fails with :class:`Backpressure`, and if any member is
        out of order or a duplicate the request fails with
        :class:`~repro.core.errors.SimulationError` — and in both cases
        nothing is enqueued or committed, so a corrected retry of the same
        batch succeeds (a partial admit would silently reorder arrivals
        relative to the client's retry).
        """
        async with self.lock:
            self._check_open()
            depth = self.queue.qsize()
            if depth + len(jobs) > self.queue_limit:
                raise Backpressure(depth, self.queue_limit, len(jobs))
            self._validate_batch(jobs)
            if self.journal is not None:
                # Write-ahead: the batch is durable before anything mutates
                # and before the ack.  A journal failure (torn write) aborts
                # here — nothing enqueued, nothing committed, no ack.
                try:
                    self.journal.append(
                        {
                            "record": "arrival_batch",
                            "session": self.session_id,
                            "jobs": [
                                [j.job_id, j.release, j.volume, j.density]
                                for j in jobs
                            ],
                        }
                    )
                except JournalWriteAborted:
                    # The journal now ends in a torn line, exactly as a crash
                    # would leave it.  Appending more would turn that tear
                    # into interior corruption, so the session fails closed;
                    # recovery is :meth:`SessionManager.restore`, which drops
                    # the torn tail and replays the committed prefix.
                    self.closed = True
                    self.journal.close()
                    if isinstance(self.recorder, JsonlRecorder):
                        self.recorder.close()
                    raise
            for job in jobs:
                self.queue.put_nowait(job)
            self._drain()
        return len(jobs)

    def _validate_batch(self, jobs: list[Job]) -> None:
        """Reject a whole arrival batch before any mutation (lock held).

        Mirrors the shadow's own rejection rules — duplicate ids and
        releases behind the committed clock — plus in-batch release
        monotonicity, so :meth:`_drain` cannot fail partway through and
        leave a prefix of the batch committed with the rest stranded in
        the queue.  (Positive volumes/densities are already enforced by
        the pydantic layer and :class:`~repro.core.job.Job` itself.)
        """
        known = {j.job_id for j in self.jobs}
        clock = self.clock
        for job in jobs:
            if job.job_id in known:
                raise SimulationError(
                    f"job {job.job_id} already known to session "
                    f"{self.session_id!r}; batch rejected, nothing committed"
                )
            if job.release < clock:
                raise SimulationError(
                    f"job {job.job_id} released at {job.release}, before the "
                    f"session clock {clock}; arrivals must be streamed in "
                    "release order — batch rejected, nothing committed"
                )
            known.add(job.job_id)
            clock = job.release

    def _drain(self) -> None:
        """Move queued arrivals into the live shadow (lock held).

        Each arrival is revealed to Algorithm C's shadow and the session
        clock advances to its release — exactly the online order a fresh
        clairvoyant run would see, so session state stays bit-identical to a
        from-scratch simulation over the same prefix.  Only :meth:`submit`
        enqueues, and only after :meth:`_validate_batch` vetted the batch,
        so every queued job here is committable.
        """
        while True:
            try:
                job = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            self.shadow.insert_job(job.job_id, job.release, job.density, job.volume)
            self.shadow.advance(job.release)
            self.jobs.append(job)
            self.jobs_accepted += 1
            self.context.emit(
                "arrival",
                job.release,
                "service",
                session=self.session_id,
                job=job.job_id,
                volume=job.volume,
                density=job.density,
            )

    # -- queries --------------------------------------------------------------

    def _instance(self) -> Instance:
        if not self.jobs:
            raise InvalidInstanceError(
                f"session {self.session_id!r} has no jobs yet; stream arrivals first"
            )
        return Instance(self.jobs)

    async def speeds(self, t: float | None = None) -> dict[str, Any]:
        """Live speed view at ``t`` (default: the session clock).

        Side-effect-free: a query beyond the session clock is answered from
        a fresh replay of the arrivals so far advanced to ``t`` — the exact
        drive a direct :class:`SimulationContext` run performs — so the live
        shadow's committed clock never moves past the last arrival and a
        read can never narrow which future arrivals the session accepts.
        """
        self._check_open()
        async with self.lock:
            at = self.clock if t is None else t
            if at < self.clock:
                raise InvalidInstanceError(
                    f"t={at} is before the session clock {self.clock}; "
                    "the live shadow only moves forward"
                )
            shadow = self.shadow
            if at > self.clock:
                shadow = self._speculative_shadow()
                shadow.advance(at)
            weight = shadow.remaining_weight()
            return {
                "t": at,
                "remaining_weight": weight,
                "speed": self.power.speed(weight),
                "active": shadow.remaining_items(),
            }

    def _speculative_shadow(self):
        """Fresh untraced replay of the arrivals so far (lock held).

        Bit-identical to driving the same prefix through a direct
        :class:`SimulationContext` — the substrate for speculative
        future-``t`` queries, discarded after the read."""
        shadow = SimulationContext(self.power, backend=self.context.backend).shadow(
            component="service.speculative"
        )
        for job in self.jobs:
            shadow.insert_job(job.job_id, job.release, job.density, job.volume)
            shadow.advance(job.release)
        return shadow

    async def schedule(self) -> tuple[Schedule, int]:
        """The session algorithm's schedule over all arrivals so far."""
        self._check_open()
        async with self.lock:
            inst = self._instance()
            sched = simulate_session_algorithm(
                self.algorithm,
                inst,
                self.power,
                context=self.context,
                max_step=self.max_step,
            )
            return sched, len(inst)

    async def metrics(self) -> tuple[CostReport, dict[str, int], int]:
        """Exact cost report of the current schedule plus shadow counters."""
        self._check_open()
        async with self.lock:
            inst = self._instance()
            sched = simulate_session_algorithm(
                self.algorithm,
                inst,
                self.power,
                context=self.context,
                max_step=self.max_step,
            )
            report = evaluate(sched, inst, self.power)
            return report, self.context.counters.as_dict(), len(inst)

    async def verified_report(self) -> TraceReport:
        """Trace a (C, NC) pair over the current arrivals and replay it
        through the streaming verifier (Lemma 3 energy equality, Lemma 4
        flow ratio, per-component ordering) — verification from the trace
        alone, exactly the ``repro trace`` pipeline."""
        self._check_open()
        async with self.lock:
            inst = self._instance()
            if not inst.is_uniform_density():
                raise InvalidInstanceError(
                    "verified reports replay the Lemma 3/4 pair, which needs "
                    "uniform densities; non-uniform sessions expose metrics instead"
                )
            rec = MemoryRecorder()
            context = SimulationContext(
                self.power, recorder=rec, backend=self.context.backend
            )
            context.emit(
                "run_meta",
                0.0,
                "service",
                alpha=self.power.alpha,
                session=self.session_id,
                instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
                algorithms=["C", "NC"],
            )
            simulate_clairvoyant(inst, self.power, context=context)
            simulate_nc_uniform(inst, self.power, context=context)
            return build_report(iter(rec))


class Campaign:
    """One sharded campaign: a ``run_sharded`` call tracked as a task."""

    def __init__(self, campaign_id: str, request: CampaignRequest) -> None:
        self.campaign_id = campaign_id
        self.request = request
        self.state = "running"
        self.error: str | None = None
        self.result: dict[str, Any] | None = None
        self.task: asyncio.Task[None] | None = None

    def _instance(self) -> Instance:
        if self.request.jobs:
            return Instance(j.to_job() for j in self.request.jobs)
        from ..workloads import random_instance

        return random_instance(self.request.n_jobs, self.request.seed, density="unit")

    def _run_blocking(self) -> dict[str, Any]:
        """The worker-thread body: shard, execute, merge, differential-check."""
        from ..parallel.shard import run_sharded
        from ..runtime.pool import PoolPolicy

        req = self.request
        inst = self._instance()
        power = PowerLaw(req.alpha)
        result = run_sharded(
            inst,
            power,
            req.machines,
            algorithm=req.algorithm,
            n_shards=req.n_shards,
            policy=PoolPolicy(workers=req.workers),
            force_serial=req.force_serial,
        )
        serial = result.cluster.report()
        return {
            "shards": len(result.shards),
            "resumed": result.resumed,
            "bit_identical": result.report == serial,
            "report": result.report,
            "n_jobs": len(inst),
        }

    async def run(self) -> None:
        try:
            self.result = await asyncio.to_thread(self._run_blocking)
            self.state = "done"
        except Exception as exc:  # noqa: BLE001 — campaign failures are data
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"


class SessionManager:
    """The service's root object: sessions and campaigns keyed by id.

    See the module docstring for the durability and bounded-store knobs;
    everything defaults off, so a bare ``SessionManager()`` behaves exactly
    like the pre-durability service.
    """

    def __init__(
        self,
        *,
        journal_dir: str | Path | None = None,
        journal_sink: str = "plain",
        max_sessions: int | None = None,
        session_ttl: float | None = None,
        evict_lru: bool = False,
        campaign_retention: int | None = None,
        create_rate: float | None = None,
        create_burst: int = 8,
        clock: Callable[[], float] = time.monotonic,
        journal_filter: Callable[[int, str], str] | None = None,
    ) -> None:
        self.sessions: dict[str, Session] = {}
        self.campaigns: dict[str, Campaign] = {}
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.journal_sink = journal_sink
        self.max_sessions = max_sessions
        self.session_ttl = session_ttl
        self.evict_lru = evict_lru
        self.campaign_retention = campaign_retention
        #: evicted session ids -> reason; these answer 410, not 404
        self.evicted: dict[str, str] = {}
        #: pruned campaign ids -> final status summary; these answer 410
        self.pruned_campaigns: dict[str, dict[str, Any]] = {}
        self.last_restore: RestoreReport | None = None
        self._touched: dict[str, float] = {}
        self._clock = clock
        self._limiter = (
            TokenBucket(create_rate, create_burst, clock)
            if create_rate is not None
            else None
        )
        self._journal_filter = journal_filter
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()

    def _mint_id(self, prefix: str) -> str:
        return f"{prefix}-{next(self._ids):06d}"

    # -- journaling -----------------------------------------------------------

    def _open_journal(
        self, session_id: str, request: SessionCreateRequest
    ) -> SessionJournal | None:
        """Open ``session_id``'s WAL and write its ``session_create`` record.

        Seed jobs are excluded from the record — they flow through the
        normal :meth:`Session.submit` path and journal as a regular
        ``arrival_batch``, so the journal is a pure arrival log.
        """
        if self.journal_dir is None:
            return None
        journal = SessionJournal(
            journal_path(self.journal_dir, session_id),
            sink=self.journal_sink,
            line_filter=self._journal_filter,
        )
        payload = request.model_dump(exclude={"jobs"})
        payload["session_id"] = session_id  # pin minted ids for the replay
        journal.append(
            {"record": "session_create", "session": session_id, "request": payload}
        )
        return journal

    # -- sessions -------------------------------------------------------------

    async def create_session(
        self, request: SessionCreateRequest, *, client_key: str | None = None
    ) -> Session:
        if self._limiter is not None and client_key is not None:
            retry_after = self._limiter.check(client_key)
            if retry_after > 0.0:
                raise RateLimited(client_key, retry_after)
        async with self._lock:
            await self._sweep_locked()
            sid = request.session_id or self._mint_id("session")
            if sid in self.sessions:
                raise KeyError(f"session {sid!r} already exists")
            if (
                self.max_sessions is not None
                and len(self.sessions) >= self.max_sessions
            ):
                if self.evict_lru and self.sessions:
                    lru = min(self._touched, key=self._touched.__getitem__)
                    await self._evict_locked(lru, "lru")
                if len(self.sessions) >= self.max_sessions:
                    raise StoreFull(self.max_sessions)
            # Re-creating an evicted id is allowed: the tombstone yields to
            # the live session (and its journal starts over).
            self.evicted.pop(sid, None)
            session = Session(sid, request, journal=self._open_journal(sid, request))
            self.sessions[sid] = session
            self._touched[sid] = self._clock()
        if request.jobs:
            await session.submit([j.to_job() for j in request.jobs])
        return session

    def get_session(self, session_id: str) -> Session:
        try:
            session = self.sessions[session_id]
        except KeyError:
            if session_id in self.evicted:
                raise SessionGone(session_id, self.evicted[session_id]) from None
            raise KeyError(f"no session {session_id!r}") from None
        self._touched[session_id] = self._clock()
        return session

    async def delete_session(self, session_id: str) -> Session:
        session = self.get_session(session_id)
        await session.close(record=True)
        async with self._lock:
            self.sessions.pop(session_id, None)
            self._touched.pop(session_id, None)
        return session

    # -- eviction -------------------------------------------------------------

    async def _evict_locked(self, session_id: str, reason: str) -> None:
        """Evict one session (manager lock held): flush its sinks, journal
        the ``session_evicted`` record, leave a 410 tombstone."""
        session = self.sessions.pop(session_id, None)
        self._touched.pop(session_id, None)
        if session is None:
            return
        self.evicted[session_id] = reason
        await session.close(record=False, evict_reason=reason)

    async def _sweep_locked(self) -> int:
        """Evict every session idle past ``session_ttl`` (manager lock held)."""
        if self.session_ttl is None:
            return 0
        now = self._clock()
        expired = [
            sid
            for sid, at in self._touched.items()
            if now - at > self.session_ttl and sid in self.sessions
        ]
        for sid in expired:
            await self._evict_locked(sid, "ttl")
        return len(expired)

    async def sweep(self) -> int:
        """TTL sweep, callable from any route; returns sessions evicted."""
        async with self._lock:
            return await self._sweep_locked()

    # -- recovery -------------------------------------------------------------

    async def restore(self, journal_dir: str | Path | None = None) -> RestoreReport:
        """Rebuild sessions from the journals under ``journal_dir``.

        Each journal is integrity-checked (:func:`read_journal` drops one
        torn tail, raises on interior corruption) and replayed through the
        *normal* ``create``/``submit`` drive, re-journaling as it goes — so
        a restored session is bit-identical to an uninterrupted one, its
        rewritten journal is byte-identical to the committed prefix, and a
        second crash right after restore loses nothing.  Journals ending in
        ``session_close`` are finished sessions (skipped); ones ending in
        ``session_evicted`` re-arm their 410 tombstones; corrupt journals
        are quarantined on disk and reported in :attr:`RestoreReport.skipped`
        — never silently restored wrong.
        """
        directory = Path(journal_dir) if journal_dir is not None else self.journal_dir
        report = RestoreReport()
        if directory is None:
            self.last_restore = report
            return report
        for sid, paths in sorted(discover_journals(directory).items()):
            try:
                records = read_journal(paths)
            except JournalCorruption as err:
                report.skipped[sid] = str(err)
                continue
            if not records or records[0].get("record") != "session_create":
                report.skipped[sid] = "journal does not begin with session_create"
                continue
            terminal = records[-1]["record"]
            if terminal == "session_close":
                report.closed.append(sid)
                continue
            if terminal == "session_evicted":
                reason = str(records[-1].get("reason", "evicted"))
                self.evicted[sid] = reason
                report.evicted.append(sid)
                continue
            try:
                payload = dict(records[0]["request"])
                payload["session_id"] = sid
                payload["jobs"] = []
                request = SessionCreateRequest.model_validate(payload)
                session = await self._restore_one(sid, request, records[1:])
            except (JournalError, SimulationError, InvalidInstanceError, KeyError) as err:
                report.skipped[sid] = f"{type(err).__name__}: {err}"
                continue
            except Exception as err:  # noqa: BLE001 — quarantine, don't crash startup
                report.skipped[sid] = f"{type(err).__name__}: {err}"
                continue
            assert session is not None
            report.restored.append(sid)
        self.last_restore = report
        return report

    async def _restore_one(
        self,
        sid: str,
        request: SessionCreateRequest,
        records: list[dict[str, Any]],
    ) -> Session:
        """Replay one journal through the normal session drive.

        Bypasses admission limits, TTL sweeps, and rate limits — restore
        must be faithful to what was acked, not subject to this boot's
        traffic policy.  Opening the journal truncates and rewrites it
        (identical bytes for the committed prefix, the torn tail gone).
        """
        async with self._lock:
            if sid in self.sessions:
                raise KeyError(f"session {sid!r} already exists")
            session = Session(sid, request, journal=self._open_journal(sid, request))
            self.sessions[sid] = session
            self._touched[sid] = self._clock()
        for record in records:
            if record["record"] != "arrival_batch":
                continue
            batch = [
                Job(int(jid), float(release), float(volume), float(density))
                for jid, release, volume, density in record["jobs"]
            ]
            await session.submit(batch)
        return session

    # -- campaigns ------------------------------------------------------------

    async def launch_campaign(self, request: CampaignRequest) -> Campaign:
        async with self._lock:
            self._prune_campaigns_locked()
            cid = request.campaign_id or self._mint_id("campaign")
            if cid in self.campaigns:
                raise KeyError(f"campaign {cid!r} already exists")
            campaign = Campaign(cid, request)
            self.campaigns[cid] = campaign
        campaign.task = asyncio.create_task(campaign.run())
        return campaign

    def _prune_campaigns_locked(self) -> None:
        """Drop finished campaigns past the retention count (oldest first),
        keeping a final-status summary for the 410 body."""
        if self.campaign_retention is None:
            return
        finished = [
            cid
            for cid, c in self.campaigns.items()
            if c.state in ("done", "failed")
        ]
        for cid in finished[: max(0, len(finished) - self.campaign_retention)]:
            campaign = self.campaigns.pop(cid)
            result = campaign.result or {}
            self.pruned_campaigns[cid] = {
                "campaign_id": cid,
                "state": campaign.state,
                "error": campaign.error,
                "shards": result.get("shards"),
                "bit_identical": result.get("bit_identical"),
                "n_jobs": result.get("n_jobs", campaign.request.n_jobs),
            }

    def get_campaign(self, campaign_id: str) -> Campaign:
        try:
            return self.campaigns[campaign_id]
        except KeyError:
            if campaign_id in self.pruned_campaigns:
                raise CampaignPruned(
                    campaign_id, self.pruned_campaigns[campaign_id]
                ) from None
            raise KeyError(f"no campaign {campaign_id!r}") from None

    # -- lifecycle ------------------------------------------------------------

    async def shutdown(self) -> None:
        """Graceful shutdown: settle campaigns, close every session (flushing
        trace sinks and journals).  Sessions are *suspended*, not closed —
        no terminal journal record — so the next start restores them.
        Called from the app's ASGI lifespan hook."""
        for campaign in self.campaigns.values():
            if campaign.task is not None and not campaign.task.done():
                try:
                    await campaign.task
                except Exception:  # noqa: BLE001 — state captured in run()
                    pass
        for session in list(self.sessions.values()):
            await session.close(record=False)
