"""Curve extraction for the paper's figures.

* Figure 1: single-job *power curves* — instantaneous power over time for the
  clairvoyant and non-clairvoyant runs; the areas under/above them are the
  energy/flow-time quantities of §1.2.
* Figure 2: *weight evolution* for the uniform-density analysis — remaining
  weight (Algorithm C) and processed weight (Algorithm NC) over time.
* Lemma 6's measure-preserving speed-profile equivalence is checked by
  comparing speed *quantiles* of the two schedules: a measure-preserving
  time remap preserves exactly the distribution of speeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import Instance
from ..core.power import PowerFunction
from ..core.schedule import Schedule

__all__ = [
    "Curve",
    "power_curve",
    "speed_curve",
    "remaining_weight_curve",
    "processed_weight_curve",
    "speed_quantile_gap",
]


@dataclass(frozen=True)
class Curve:
    """A sampled time series with a label (benches render these as text)."""

    label: str
    times: np.ndarray
    values: np.ndarray

    def area(self) -> float:
        """Trapezoidal area under the curve (diagnostic only; exact metrics
        come from the segment closed forms)."""
        return float(np.trapezoid(self.values, self.times))


def _grid(schedule: Schedule, samples: int, t_end: float | None) -> np.ndarray:
    end = schedule.end_time if t_end is None else t_end
    return np.linspace(0.0, end, samples)


def speed_curve(schedule: Schedule, *, samples: int = 512, t_end: float | None = None, label: str = "speed") -> Curve:
    times = _grid(schedule, samples, t_end)
    return Curve(label, times, np.array([schedule.speed_at(float(t)) for t in times]))


def power_curve(
    schedule: Schedule,
    power: PowerFunction,
    *,
    samples: int = 512,
    t_end: float | None = None,
    label: str = "power",
) -> Curve:
    """Instantaneous power over time — the Figure 1 curves."""
    times = _grid(schedule, samples, t_end)
    vals = np.array([power.power(schedule.speed_at(float(t))) for t in times])
    return Curve(label, times, vals)


def remaining_weight_curve(
    schedule: Schedule, instance: Instance, *, samples: int = 512, t_end: float | None = None
) -> Curve:
    """Total remaining fractional weight over time (Fig. 2's solid lines)."""
    times = _grid(schedule, samples, t_end)
    vals = []
    for t in times:
        w = 0.0
        for job in instance:
            if job.release <= t:
                done = schedule.processed_volume_until(job.job_id, float(t))
                w += job.density * max(job.volume - done, 0.0)
        vals.append(w)
    return Curve("remaining weight", times, np.array(vals))


def processed_weight_curve(
    schedule: Schedule, instance: Instance, *, samples: int = 512, t_end: float | None = None
) -> Curve:
    """Total processed weight over time (Algorithm NC's speed-rule driver)."""
    times = _grid(schedule, samples, t_end)
    vals = []
    for t in times:
        w = sum(
            job.density * schedule.processed_volume_until(job.job_id, float(t))
            for job in instance
            if job.release <= t
        )
        vals.append(w)
    return Curve("processed weight", times, np.array(vals))


def speed_quantile_gap(a: Schedule, b: Schedule, *, samples: int = 4096) -> float:
    """Normalised empirical Wasserstein-1 distance between the speed
    distributions of two schedules sampled over a common horizon.

    Lemma 6 promises a measure-preserving bijection of time under which the
    speeds of Algorithms NC and C coincide; equality of speed distributions
    is the observable consequence.  The *mean* absolute quantile difference is
    used (not the max) because near a steep part of the speed curve a finite
    sample grid shifts individual quantiles by O(grid step * slope) even when
    the underlying distributions are identical.
    """
    end = max(a.end_time, b.end_time)
    times = np.linspace(0.0, end, samples)
    qa = np.sort([a.speed_at(float(t)) for t in times])
    qb = np.sort([b.speed_at(float(t)) for t in times])
    scale = max(float(qa[-1]), float(qb[-1]), 1e-12)
    return float(np.mean(np.abs(qa - qb))) / scale
