"""Journaling overhead and crash-recovery speed of the durable service.

Two claims, both gated by ``scripts/check_bench_regression.py``:

* ``journal_overhead`` — the p99 request latency of a journaled service
  divided by an unjournaled twin's, over the same paired mixed load
  (arrival submits, speed queries, periodic full metrics — the
  ``bench_service_load`` mix; interleaved A/B so host noise hits both
  arms).  The write-ahead journal flushes one canonical-JSON + SHA-256
  line per batch *before* the ack; the gate (``--max-journal-overhead``,
  default 1.10) keeps that durability tax under 10% at the service's
  tail.  Submit-only percentiles are recorded alongside as diagnostics —
  at tens of microseconds per bare submit, the mandatory pre-ack flush
  is a visible fraction there by construction, which is why the gate
  reads the user-visible mixed tail.
* ``restore_100_sessions_ms`` — wall-clock for
  :meth:`~repro.service.sessions.SessionManager.restore` to rebuild 100
  journaled sessions (deterministic replay through the normal submit
  drive, re-journaling as it goes).  Gated one-sided by
  ``--max-restore-ms``: recovery is part of the availability budget, so a
  restart must not silently become minutes.

Latency percentiles are host-dependent and excluded from the baseline
diff like every timing number; the *ratio* and the deterministic counts
are the stable signals.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from conftest import emit, emit_json

pytest.importorskip("pydantic")

from repro.analysis import format_table  # noqa: E402
from repro.core.job import Job  # noqa: E402
from repro.service.app import create_app  # noqa: E402
from repro.service.asgi import asgi_call  # noqa: E402
from repro.service.models import SessionCreateRequest  # noqa: E402
from repro.service.sessions import SessionManager  # noqa: E402

ALPHA = 3.0
#: Arrival submits measured per arm (plain vs journaled), after warmup.
SUBMITS = 400
WARMUP = 40
#: Arrivals per session before rotating to a fresh one.
JOBS_PER_SESSION = 40
#: Sessions rebuilt by the restore timing, each with this many batches.
RESTORE_SESSIONS = 100
RESTORE_BATCHES = 5


def _percentile(sorted_ms: list[float], q: float) -> float:
    idx = min(len(sorted_ms) - 1, max(0, round(q * (len(sorted_ms) - 1))))
    return sorted_ms[idx]


#: Every Nth arrival also queries full metrics (the expensive endpoint).
METRICS_EVERY = 20


async def _drive_pair(tmp_path) -> dict:
    """One interleaved A/B run of the mixed load: every iteration drives the
    same requests through a plain app and a journaled app back-to-back, so
    drift in the host's background load lands on both arms equally."""
    apps = {
        "plain": create_app(SessionManager()),
        "journal": create_app(SessionManager(journal_dir=tmp_path / "journals")),
    }
    for app in apps.values():
        await app.startup()
    mixed: dict[str, list[float]] = {"plain": [], "journal": []}
    submits: dict[str, list[float]] = {"plain": [], "journal": []}
    errors = 0
    session_idx = 0
    jobs_in_session = JOBS_PER_SESSION
    release = 0.0
    job_id = 0

    async def timed(arm: str, method: str, path: str, *, record, is_submit=False, **kw):
        nonlocal errors
        t0 = time.perf_counter()
        resp = await asgi_call(apps[arm], method, path, **kw)
        dt_ms = (time.perf_counter() - t0) * 1e3
        if resp.status_code >= 300:
            errors += 1
        if record:
            mixed[arm].append(dt_ms)
            if is_submit:
                submits[arm].append(dt_ms)

    for i in range(WARMUP + SUBMITS):
        record = i >= WARMUP
        if jobs_in_session >= JOBS_PER_SESSION:
            session_idx += 1
            for arm, app in apps.items():
                resp = await asgi_call(
                    app, "POST", "/sessions",
                    json_body={
                        "session_id": f"bench-{session_idx}",
                        "alpha": ALPHA,
                        "algorithm": "NC",
                    },
                )
                if resp.status_code >= 300:
                    errors += 1
            jobs_in_session = 0
            release = 0.0
        job_id += 1
        release += 0.05
        body = {"jobs": [{"id": job_id, "release": release, "volume": 1.0}]}
        sid = f"bench-{session_idx}"
        for arm in apps:
            await timed(
                arm, "POST", f"/sessions/{sid}/jobs",
                record=record, is_submit=True, json_body=body,
            )
        for arm in apps:
            await timed(arm, "GET", f"/sessions/{sid}/speeds", record=record)
        jobs_in_session += 1
        if jobs_in_session % METRICS_EVERY == 0:
            for arm in apps:
                await timed(arm, "GET", f"/sessions/{sid}/metrics", record=record)
    for app in apps.values():
        await app.shutdown()
    return {"mixed": mixed, "submits": submits, "errors": errors}


async def _restore_timing(tmp_path) -> dict:
    """Journal RESTORE_SESSIONS sessions, then time a cold restore."""
    jdir = tmp_path / "restore-journals"
    manager = SessionManager(journal_dir=jdir)
    for i in range(RESTORE_SESSIONS):
        session = await manager.create_session(
            SessionCreateRequest(session_id=f"r{i:03d}", alpha=ALPHA)
        )
        for b in range(RESTORE_BATCHES):
            await session.submit(
                [Job(2 * b, float(b), 1.0, 1.0), Job(2 * b + 1, float(b), 2.0, 1.0)]
            )
    await manager.shutdown()

    fresh = SessionManager(journal_dir=jdir)
    t0 = time.perf_counter()
    report = await fresh.restore()
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    await fresh.shutdown()
    return {
        "restored": len(report.restored),
        "skipped": len(report.skipped),
        "restore_ms": elapsed_ms,
    }


def _measure(tmp_path) -> dict:
    loop = asyncio.new_event_loop()
    try:
        pair = loop.run_until_complete(_drive_pair(tmp_path))
        restore = loop.run_until_complete(_restore_timing(tmp_path))
    finally:
        loop.close()
    plain = sorted(pair["mixed"]["plain"])
    journal = sorted(pair["mixed"]["journal"])
    sub_plain = sorted(pair["submits"]["plain"])
    sub_journal = sorted(pair["submits"]["journal"])
    p99_plain = _percentile(plain, 0.99)
    p99_journal = _percentile(journal, 0.99)
    return {
        "requests_per_arm": len(plain),
        "submits_per_arm": len(sub_plain),
        "errors": pair["errors"],
        "p50_plain_ms": _percentile(plain, 0.50),
        "p50_journal_ms": _percentile(journal, 0.50),
        "p99_plain_ms": p99_plain,
        "p99_journal_ms": p99_journal,
        "journal_overhead": p99_journal / p99_plain,
        "submit_p99_plain_ms": _percentile(sub_plain, 0.99),
        "submit_p99_journal_ms": _percentile(sub_journal, 0.99),
        "restore_sessions": restore["restored"],
        "restore_skipped": restore["skipped"],
        "restore_100_sessions_ms": restore["restore_ms"],
        "restore_per_session_ms": restore["restore_ms"] / max(1, restore["restored"]),
    }


def test_service_recovery(benchmark, tmp_path):
    result = benchmark.pedantic(_measure, args=(tmp_path,), rounds=1, iterations=1)

    rows = [
        ["p50 mixed ms", f"{result['p50_plain_ms']:.3f}", f"{result['p50_journal_ms']:.3f}"],
        ["p99 mixed ms", f"{result['p99_plain_ms']:.3f}", f"{result['p99_journal_ms']:.3f}"],
        [
            "p99 submit ms",
            f"{result['submit_p99_plain_ms']:.3f}",
            f"{result['submit_p99_journal_ms']:.3f}",
        ],
        ["p99 overhead", "1.000", f"{result['journal_overhead']:.3f}"],
        ["restore (100 sessions)", "—", f"{result['restore_100_sessions_ms']:.1f} ms"],
    ]
    table = format_table(
        ["metric", "plain", "journaled"],
        rows,
        title=f"journaling overhead over {result['requests_per_arm']} paired "
        f"mixed requests ({result['errors']} errors)",
    )
    emit("service_recovery", table)
    emit_json("service_recovery", result)

    assert result["errors"] == 0
    assert result["restore_sessions"] == RESTORE_SESSIONS
    assert result["restore_skipped"] == 0
    # Sanity ceilings far above any healthy run; the sharp gates live in
    # scripts/check_bench_regression.py (--max-journal-overhead,
    # --max-restore-ms).
    assert result["journal_overhead"] < 5.0
    assert result["restore_100_sessions_ms"] < 60_000.0
