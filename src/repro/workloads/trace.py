"""Trace import/export: run the algorithms on external job logs.

A trace is a CSV with header ``job_id,release,volume,density`` (density
optional, default 1.0).  This lets downstream users replay real cluster logs
through the paper's algorithms — the reproduction's synthetic generators
remain the default because the paper itself has no traces.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO

from ..core.errors import InvalidInstanceError
from ..core.job import Instance, Job

__all__ = ["read_trace", "write_trace", "parse_trace", "trace_from_string"]

_FIELDS = ("job_id", "release", "volume", "density")


def parse_trace(stream: TextIO) -> Instance:
    """Parse a CSV trace from an open text stream."""
    reader = csv.DictReader(stream)
    if reader.fieldnames is None:
        raise InvalidInstanceError("trace is empty")
    missing = {"job_id", "release", "volume"} - set(reader.fieldnames)
    if missing:
        raise InvalidInstanceError(f"trace is missing columns: {sorted(missing)}")
    jobs = []
    for lineno, row in enumerate(reader, start=2):
        try:
            jobs.append(
                Job(
                    job_id=int(row["job_id"]),
                    release=float(row["release"]),
                    volume=float(row["volume"]),
                    density=float(row["density"]) if row.get("density") not in (None, "") else 1.0,
                )
            )
        except (TypeError, ValueError) as exc:
            raise InvalidInstanceError(f"trace line {lineno}: {exc}") from exc
    if not jobs:
        raise InvalidInstanceError("trace contains no jobs")
    return Instance(jobs)


def read_trace(path: str | Path) -> Instance:
    """Read a CSV trace file into an :class:`Instance`."""
    with open(path, newline="") as fh:
        return parse_trace(fh)


def write_trace(path: str | Path, instance: Instance) -> None:
    """Write an instance as a CSV trace (exact float round-trip via repr)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for job in instance:
            writer.writerow([job.job_id, repr(job.release), repr(job.volume), repr(job.density)])


def trace_from_string(text: str) -> Instance:
    """Convenience: parse a trace from a literal string (docs/tests)."""
    return parse_trace(io.StringIO(text))
