"""Algorithm NC-PAR — non-clairvoyant parallel scheduling without immediate
dispatch (§6, uniform densities).

The algorithm keeps a single **global FIFO queue** of unassigned jobs.
Whenever a machine is *available* — all jobs previously assigned to it are
complete — it takes the head of the queue (so each machine processes one job
at a time).  The machine's instantaneous speed follows Algorithm NC on its
*machine-local* instance: while it processes job ``j``,
``P(s) = W^C(r[j]-) + W̆[j](t)`` where the shadow clairvoyant run is over the
jobs previously assigned to this machine (all completed, hence of known
volume, and all released before ``r[j]`` because the global queue is FIFO).

Lemma 20: NC-PAR's assignment is *identical* to C-PAR's greedy immediate
dispatch (machine availability order coincides with least-remaining-weight
order, via Lemma 2's monotonicity and Lemma 6's speed-profile equivalence) —
reproduced here as an exact property test.  Combined with Lemmas 21/22
(energy equality, flow ratio ``1/(1-1/alpha)`` per machine), Theorem 17 gives
an ``O(alpha + 1/(alpha-1))`` competitive ratio.
"""

from __future__ import annotations

import math

from ..core.errors import InvalidInstanceError, SimulationError
from ..core.job import Instance
from ..core.kernels import growth_time_between
from ..core.power import PowerLaw
from ..core.schedule import GrowthSegment, ScheduleBuilder
from ..core.shadow import SimulationContext
from .cluster import ClusterRun

__all__ = ["simulate_nc_par"]


def simulate_nc_par(
    instance: Instance,
    power: PowerLaw,
    machines: int,
    *,
    context: SimulationContext | None = None,
) -> ClusterRun:
    """Run NC-PAR exactly (closed-form per-job growth segments)."""
    if machines < 1:
        raise InvalidInstanceError(f"machines must be >= 1, got {machines}")
    if not instance.is_uniform_density():
        raise InvalidInstanceError("NC-PAR (§6) is defined for uniform densities")
    alpha = power.alpha
    if context is None:
        context = SimulationContext(power)

    free = [0.0] * machines  # time each machine completes its assigned work
    assignments: dict[int, list[int]] = {i: [] for i in range(machines)}
    builders = {i: ScheduleBuilder() for i in range(machines)}
    # One incremental shadow run of Algorithm C per machine: the global queue
    # is FIFO, so each machine's offset queries arrive in nondecreasing time
    # and the oracle never has to rebuild.
    oracles = [
        context.prefix_oracle(component=f"nc_par.m{i}.prefix") for i in range(machines)
    ]
    recorder = context.recorder
    rec = recorder if recorder.enabled else None  # zero-overhead hoist
    filt = context.volume_filter  # fault reveal channel; None when unfaulted

    for job in instance:  # global FIFO queue == release order
        # Pick the machine that is (or first becomes) available.  Among
        # machines already idle at the release, the fixed total order (index)
        # breaks the tie — the same order C-PAR uses.
        idle = [i for i in range(machines) if free[i] <= job.release]
        chosen = min(idle) if idle else min(range(machines), key=lambda i: (free[i], i))
        start = max(job.release, free[chosen])

        # Speed-rule offset: Algorithm C's remaining weight just before r[j]
        # on the machine-local instance of previously assigned (completed,
        # hence known) jobs.
        offset = oracles[chosen].weight_at(job.release) if assignments[chosen] else 0.0

        tau = growth_time_between(offset, offset + job.weight, job.density, alpha)
        builders[chosen].append(
            GrowthSegment(start, start + tau, job.job_id, offset, job.density, alpha)
        )
        if rec is not None:
            comp = f"nc_par.m{chosen}"
            rec.emit(
                "release",
                job.release,
                comp,
                job=job.job_id,
                density=job.density,
                machine=chosen,
                offset=offset,
            )
            rec.emit(
                "kernel_eval",
                start,
                comp,
                profile="growth",
                t0=start,
                t1=start + tau,
                job=job.job_id,
                x0=offset,
                rho=job.density,
                alpha=alpha,
            )
            rec.emit("completion", start + tau, comp, job=job.job_id)
        assignments[chosen].append(job.job_id)
        vol = job.volume
        if filt is not None:
            vol = filt(job.job_id, vol)
            if not (math.isfinite(vol) and vol > 0.0):
                raise SimulationError(
                    f"revealed volume of job {job.job_id} corrupted to {vol}",
                    time=start + tau,
                    job=job.job_id,
                    value=vol,
                )
        oracles[chosen].add_job(job.job_id, job.release, job.density, vol)
        free[chosen] = start + tau

    schedules = {i: builders[i].build() for i in range(machines) if assignments[i]}
    return ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=assignments,
        schedules=schedules,
    )
