# Convenience targets for the reproduction.

.PHONY: install test bench bench-smoke check examples reproduce clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast benchmark subset: the shadow-layer speedup gate (writes
# benchmarks/out/BENCH_general_density.json) plus the eta/beta ablation.
bench-smoke:
	pytest benchmarks/bench_general_density.py benchmarks/bench_ablation_eta_beta.py --benchmark-only

# The one-stop entrypoint: tier-1 tests, then the benchmark smoke gate.
check: test bench-smoke

examples:
	python examples/quickstart.py
	python examples/explore_dynamics.py
	python examples/cloud_scheduling.py
	python examples/datacenter_cluster.py
	python examples/adversarial_analysis.py
	python examples/reproduce_paper.py

reproduce:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
