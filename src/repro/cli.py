"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``          — run one algorithm on a generated workload, print costs.
* ``ratio``        — the same plus a certified empirical competitive ratio.
* ``table1``       — regenerate the paper's Table 1.
* ``figures``      — regenerate the Figure 1/2 curves as ASCII charts.
* ``lower-bound``  — the §6 immediate-dispatch adversary, swept over k.
* ``cluster``      — NC-PAR vs C-PAR on a generated workload.
* ``trace``        — run C + NC with tracing on, write a JSONL trace and
  replay it through :mod:`repro.analysis.trace_report` (Lemma 3/4 checks).
* ``chaos``        — seeded fault-injection campaign under the supervised
  runtime; re-verifies the paper's guarantees on every surviving run.
  ``--shards`` switches to the shard-kill campaign (workers SIGKILLed
  mid-shard; recovery + bit-identity + Lemma 20 verified);
  ``--timeout`` bounds each run's wall clock.
* ``shard``        — run NC-PAR/C-PAR sharded on the supervised worker
  pool and verify the merged report is bit-identical to the serial path.
* ``serve``        — serve the scheduling API (:mod:`repro.service`) over
  HTTP: multi-tenant sessions, online arrivals, speed/schedule/metrics/
  Gantt queries, verified reports, sharded campaigns.

Every command accepts ``--seed`` and ``--alpha`` so results are exactly
reproducible.  The CLI builds only on the public API — it doubles as an
integration test surface (see ``tests/test_cli.py``).

``verify`` and ``chaos`` exit nonzero when any checked claim fails, so they
can gate CI directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import PowerLaw
from .analysis import (
    build_table1,
    empirical_ratio,
    format_ascii_chart,
    format_table,
    power_curve,
    render_table1,
    run_algorithm,
)
from .analysis.ratios import ALGORITHMS
from .core.job import Instance, Job
from .workloads import random_instance

__all__ = ["main", "build_parser"]


def _workload(args: argparse.Namespace) -> Instance:
    return random_instance(
        args.jobs,
        args.seed,
        rate=args.rate,
        volume=args.volumes,
        density=args.densities,
    )


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=20, help="number of jobs")
    p.add_argument("--seed", type=int, default=1, help="workload RNG seed")
    p.add_argument("--rate", type=float, default=1.0, help="Poisson arrival rate")
    p.add_argument(
        "--volumes",
        default="exponential",
        choices=["exponential", "pareto", "uniform", "bimodal"],
        help="volume distribution",
    )
    p.add_argument(
        "--densities",
        default="unit",
        choices=["unit", "loguniform", "powers"],
        help="density model",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speed Scaling in the Non-clairvoyant Model (SPAA 2015) — reproduction CLI",
    )
    parser.add_argument("--alpha", type=float, default=3.0, help="power exponent (P = s^alpha)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm on a generated workload")
    p_run.add_argument("--algorithm", default="NC", choices=list(ALGORITHMS))
    p_run.add_argument("--max-step", type=float, default=2e-2, help="engine step (NC_GENERAL)")
    _add_workload_args(p_run)

    p_ratio = sub.add_parser("ratio", help="empirical competitive ratio vs certified OPT bound")
    p_ratio.add_argument("--algorithm", default="NC", choices=list(ALGORITHMS))
    p_ratio.add_argument("--objective", default="fractional", choices=["fractional", "integral"])
    p_ratio.add_argument("--max-step", type=float, default=2e-2)
    _add_workload_args(p_ratio)

    p_t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_t1.add_argument("--uniform-jobs", type=int, default=16)
    p_t1.add_argument("--nonuniform-jobs", type=int, default=6)
    p_t1.add_argument("--seeds", type=int, nargs="+", default=[1, 2])

    p_fig = sub.add_parser("figures", help="regenerate the Figure 1 power curves")
    p_fig.add_argument("--weight", type=float, default=4.0, help="single-job weight")

    p_lb = sub.add_parser("lower-bound", help="the §6 immediate-dispatch adversary")
    p_lb.add_argument("--machines", type=int, nargs="+", default=[2, 4, 8, 16])
    p_lb.add_argument("--rule", default="least_count", choices=["least_count", "round_robin"])

    p_cl = sub.add_parser("cluster", help="NC-PAR vs C-PAR on a generated workload")
    p_cl.add_argument("--machines", type=int, default=4)
    _add_workload_args(p_cl)

    p_opt = sub.add_parser("opt", help="bracket the offline optimum [dual LB, rounded UB]")
    p_opt.add_argument("--slots", type=int, default=400)
    p_opt.add_argument("--iterations", type=int, default=2000)
    _add_workload_args(p_opt)

    p_ver = sub.add_parser("verify", help="check every testable paper claim on a workload")
    p_ver.add_argument("--machines", type=int, default=1)
    _add_workload_args(p_ver)

    p_tr = sub.add_parser(
        "trace", help="emit a JSONL trace of C + NC and replay its invariants"
    )
    p_tr.add_argument(
        "--out", default="repro_trace.jsonl", help="JSONL trace output path"
    )
    p_tr.add_argument(
        "--sink", default="plain", metavar="SPEC",
        help="trace sink: plain | gzip | rotate:N (bounded self-contained "
        "segments of N events each)",
    )
    p_tr.add_argument(
        "--events", type=int, default=0, help="pretty-print the first N events"
    )
    p_tr.add_argument(
        "--corpus", default=None, help="golden corpus JSON to load the instance from"
    )
    p_tr.add_argument(
        "--case", default=None, help="corpus key (e.g. nc_uniform/...); requires --corpus"
    )
    p_tr.add_argument(
        "--replay", default=None, metavar="PATH",
        help="skip simulation: stream-verify an existing trace (plain JSONL, "
        "gzip, or the base path of rotated segments) with bounded memory",
    )
    p_tr.add_argument(
        "--follow", default=None, metavar="PATH",
        help="tail a live JSONL trace, printing incremental progress and the "
        "final verified report once the writer goes idle",
    )
    p_tr.add_argument(
        "--poll", type=float, default=0.2,
        help="--follow poll interval in seconds",
    )
    p_tr.add_argument(
        "--idle-timeout", type=float, default=2.0,
        help="--follow stops after this many idle seconds",
    )
    p_tr.add_argument(
        "--progress-every", type=int, default=100_000,
        help="--follow/--replay: print a progress line every N events",
    )
    _add_workload_args(p_tr)

    p_ch = sub.add_parser(
        "chaos", help="seeded fault-injection campaign under the supervised runtime"
    )
    p_ch.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_ch.add_argument("--n", type=int, default=30, help="number of fault scenarios")
    p_ch.add_argument("--jobs", type=int, default=8, help="jobs per scenario")
    p_ch.add_argument("--machines", type=int, default=3, help="machines (parallel runs)")
    p_ch.add_argument("--out", default=None, help="append every run's trace to this JSONL file")
    p_ch.add_argument(
        "--sink", default="plain", metavar="SPEC",
        help="campaign trace sink for --out: plain | gzip | rotate:N",
    )
    p_ch.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock budget in seconds; a run exceeding it is "
        "abandoned, marked failed (run_timeout event), and the campaign moves on",
    )
    p_ch.add_argument(
        "--shards", action="store_true",
        help="run the shard-kill campaign instead (SIGKILL workers mid-shard, "
        "verify recovery, bit-identity with serial, and Lemma 20/3/4)",
    )
    p_ch.add_argument("--workers", type=int, default=2, help="pool workers (--shards)")
    p_ch.add_argument("--kills", type=int, default=2, help="workers SIGKILLed per run (--shards)")
    p_ch.add_argument(
        "--hold", type=float, default=0.15,
        help="synthetic per-shard duration in seconds (--shards); guarantees "
        "kills land mid-shard",
    )
    p_ch.add_argument(
        "--checkpoint-dir", default=None,
        help="durable shard checkpoint directory (--shards); enables the "
        "checkpoint_corruption rotation",
    )
    p_ch.add_argument(
        "--service", action="store_true",
        help="run the service chaos campaign instead: SIGKILL live servers "
        "mid-workload, tear/corrupt journals, evict sessions, inject slow "
        "handlers and connection drops — verify every recovery is "
        "bit-identical and Lemma 3/4 replay from surviving traces",
    )

    p_srv = sub.add_parser(
        "serve",
        help="serve the scheduling API over HTTP (requires the service extra: pydantic)",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument("--port", type=int, default=8176, help="bind port")
    p_srv.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="write-ahead journal directory; enables crash recovery "
        "(sessions restore bit-identical on restart)",
    )
    p_srv.add_argument(
        "--journal-sink", default="plain", metavar="SPEC",
        help="journal sink: plain | gzip | rotate:N",
    )
    p_srv.add_argument(
        "--no-restore", action="store_true",
        help="skip replaying existing journals on startup",
    )
    p_srv.add_argument(
        "--max-sessions", type=int, default=None,
        help="admission limit; a create beyond it answers 503 "
        "(or evicts the LRU session with --evict-lru)",
    )
    p_srv.add_argument(
        "--session-ttl", type=float, default=None, metavar="SECONDS",
        help="evict sessions idle longer than this (410 afterwards)",
    )
    p_srv.add_argument(
        "--evict-lru", action="store_true",
        help="at --max-sessions, evict the least-recently-used session "
        "instead of answering 503",
    )
    p_srv.add_argument(
        "--campaign-retention", type=int, default=None, metavar="N",
        help="keep at most N finished campaigns; pruned ids answer 410 "
        "with the final status summarized",
    )
    p_srv.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; a handler still running at the deadline "
        "is cancelled and the client sees 504",
    )
    p_srv.add_argument(
        "--create-rate", type=float, default=None, metavar="PER_SECOND",
        help="per-client session-create rate limit (token bucket; "
        "429 + Retry-After when exceeded)",
    )
    p_srv.add_argument(
        "--create-burst", type=int, default=8,
        help="token-bucket burst capacity for --create-rate",
    )

    p_sh = sub.add_parser(
        "shard",
        help="run a parallel family sharded on the supervised pool and verify "
        "bit-identity with the serial path",
    )
    p_sh.add_argument("--machines", type=int, default=4)
    p_sh.add_argument("--algorithm", default="nc_par", choices=["nc_par", "c_par"])
    p_sh.add_argument("--workers", type=int, default=2, help="pool worker processes")
    p_sh.add_argument("--n-shards", type=int, default=None, help="shard count (default: balanced)")
    p_sh.add_argument("--checkpoint-dir", default=None, help="durable shard checkpoint directory")
    p_sh.add_argument(
        "--serial", action="store_true",
        help="compute shards in-process instead of on the pool",
    )
    p_sh.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record the sharded run (plus a traced C/NC pair when uniform-"
        "density) to this JSONL and re-verify it in one streaming pass",
    )
    _add_workload_args(p_sh)

    return parser


def _cmd_run(args: argparse.Namespace) -> str:
    power = PowerLaw(args.alpha)
    inst = _workload(args)
    rep = run_algorithm(args.algorithm, inst, power, max_step=args.max_step)
    rows = [
        ["energy", rep.energy],
        ["fractional flow", rep.fractional_flow],
        ["integral flow", rep.integral_flow],
        ["G_frac", rep.fractional_objective],
        ["G_int", rep.integral_objective],
        ["makespan", rep.makespan],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=f"{args.algorithm} on {len(inst)} jobs (seed {args.seed}, alpha {args.alpha:g})",
        floatfmt=".6g",
    )


def _cmd_ratio(args: argparse.Namespace) -> str:
    power = PowerLaw(args.alpha)
    inst = _workload(args)
    res = empirical_ratio(
        args.algorithm, inst, power, objective=args.objective, max_step=args.max_step
    )
    return format_table(
        ["algorithm", "objective", "cost", "OPT lower bound", "ratio", "bound source"],
        [[res.algorithm, res.objective, res.cost, res.bound.value, res.ratio, res.bound.source]],
        floatfmt=".5g",
    )


def _cmd_table1(args: argparse.Namespace) -> str:
    rows = build_table1(
        args.alpha,
        uniform_n=args.uniform_jobs,
        nonuniform_n=args.nonuniform_jobs,
        seeds=tuple(args.seeds),
    )
    return render_table1(rows, args.alpha)


def _cmd_figures(args: argparse.Namespace) -> str:
    from .algorithms import simulate_clairvoyant, simulate_nc_uniform

    power = PowerLaw(args.alpha)
    inst = Instance([Job(0, 0.0, args.weight, 1.0)])
    c = power_curve(simulate_clairvoyant(inst, power).schedule, power, samples=72, label="C")
    nc = power_curve(simulate_nc_uniform(inst, power).schedule, power, samples=72, label="NC")
    return format_ascii_chart(
        [(c.label, c.times, c.values), (nc.label, nc.times, nc.values)],
        title=f"Figure 1 — power vs time, single job W = {args.weight:g}, alpha = {args.alpha:g}",
    )


def _cmd_lower_bound(args: argparse.Namespace) -> str:
    from .parallel import adversarial_ratio

    power = PowerLaw(args.alpha)
    rows = []
    for k in args.machines:
        out = adversarial_ratio(k, power, args.rule)
        rows.append([k, out.ratio, k ** (1 - 1 / args.alpha)])
    return format_table(
        ["k", "adversarial ratio", "k^(1-1/alpha)"],
        rows,
        title=f"§6 lower bound vs {args.rule} (alpha = {args.alpha:g})",
        floatfmt=".4f",
    )


def _cmd_cluster(args: argparse.Namespace) -> str:
    from .parallel import simulate_c_par, simulate_nc_par

    power = PowerLaw(args.alpha)
    inst = _workload(args)
    if not inst.is_uniform_density():
        raise SystemExit("cluster command requires a uniform-density workload (--densities unit)")
    nc = simulate_nc_par(inst, power, args.machines)
    c = simulate_c_par(inst, power, args.machines)
    rn, rc = nc.report(), c.report()
    rows = [
        ["NC-PAR", rn.energy, rn.fractional_flow, rn.fractional_objective],
        ["C-PAR", rc.energy, rc.fractional_flow, rc.fractional_objective],
    ]
    table = format_table(
        ["algorithm", "energy", "frac flow", "G_frac"],
        rows,
        title=f"{args.machines} machines, {len(inst)} jobs "
        f"(Lemma 20 assignments equal: {nc.assignments == c.assignments})",
        floatfmt=".5g",
    )
    return table


def _cmd_opt(args: argparse.Namespace) -> str:
    from .core.metrics import evaluate
    from .offline.convex import fractional_lower_bound, schedule_from_bound

    power = PowerLaw(args.alpha)
    inst = _workload(args)
    cb = fractional_lower_bound(inst, power, slots=args.slots, iterations=args.iterations)
    upper = evaluate(schedule_from_bound(inst, cb), inst, power).fractional_objective
    gap = (upper - cb.dual_value) / upper if upper else 0.0
    return format_table(
        ["certified lower bound", "rounded-schedule upper bound", "relative gap"],
        [[cb.dual_value, upper, gap]],
        title=f"offline fractional optimum bracket ({len(inst)} jobs, seed {args.seed})",
        floatfmt=".6g",
    )


def _cmd_verify(args: argparse.Namespace) -> tuple[str, int]:
    from .analysis.verification import render_claims, verify_paper_claims

    power = PowerLaw(args.alpha)
    inst = _workload(args)
    checks = verify_paper_claims(inst, power, machines=args.machines)
    table = render_claims(checks)
    ok = all(c.holds for c in checks)
    verdict = "ALL CLAIMS HOLD" if ok else "SOME CLAIMS FAILED"
    return (
        table + f"\n\n{verdict} ({sum(c.holds for c in checks)}/{len(checks)})",
        0 if ok else 1,
    )


def _cmd_chaos(args: argparse.Namespace) -> tuple[str, int]:
    from .runtime.chaos import (
        format_campaign,
        format_shard_campaign,
        run_campaign,
        run_shard_campaign,
    )

    if args.service:
        from .runtime.chaos import format_service_campaign, run_service_campaign

        service_report = run_service_campaign(
            args.seed,
            args.n,
            jobs=args.jobs,
            alpha=args.alpha,
            out=args.out,
            sink_spec=args.sink,
        )
        text = format_service_campaign(service_report)
        if args.out:
            text += f"\n\ntraces written to {args.out}"
        return text, 0 if service_report.ok else 1
    if args.shards:
        shard_report = run_shard_campaign(
            args.seed,
            args.n,
            jobs=args.jobs,
            alpha=args.alpha,
            machines=args.machines,
            workers=args.workers,
            kills=args.kills,
            shard_hold=args.hold,
            checkpoint_dir=args.checkpoint_dir,
            out=args.out,
            sink_spec=args.sink,
        )
        text = format_shard_campaign(shard_report)
        if args.out:
            text += f"\n\ntraces written to {args.out}"
        return text, 0 if shard_report.ok else 1
    report = run_campaign(
        args.seed,
        args.n,
        jobs=args.jobs,
        alpha=args.alpha,
        machines=args.machines,
        out=args.out,
        sink_spec=args.sink,
        run_timeout=args.timeout,
    )
    text = format_campaign(report)
    if args.out:
        text += f"\n\ntraces written to {args.out}"
    return text, 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    import signal

    try:
        from .service import create_app, serve
        from .service.sessions import SessionManager
    except ImportError as exc:  # pydantic is the service extra
        raise SystemExit(
            f"repro serve needs the service extra (pip install 'repro[service]'): {exc}"
        ) from exc

    manager = SessionManager(
        journal_dir=args.journal_dir,
        journal_sink=args.journal_sink,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
        evict_lru=args.evict_lru,
        campaign_retention=args.campaign_retention,
        create_rate=args.create_rate,
        create_burst=args.create_burst,
    )
    app = create_app(manager, request_timeout=args.request_timeout)
    print(
        f"serving scheduling API on http://{args.host}:{args.port} "
        "(POST /sessions, GET /health; SIGTERM/Ctrl-C to stop)",
        flush=True,
    )

    async def _main() -> None:
        if args.journal_dir and not args.no_restore:
            report = await manager.restore()
            print(
                f"restored {len(report.restored)} session(s) from "
                f"{args.journal_dir} ({len(report.closed)} closed, "
                f"{len(report.evicted)} evicted, "
                f"{len(report.skipped)} quarantined)",
                flush=True,
            )
        trigger = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, trigger.set)
            except (NotImplementedError, RuntimeError):
                # Platforms without signal handlers fall back to Ctrl-C's
                # KeyboardInterrupt; serve() still flushes on cancellation.
                pass
        await serve(app, args.host, args.port, shutdown_trigger=trigger)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return "server stopped; session trace sinks and journals flushed"


def _cmd_shard(args: argparse.Namespace) -> tuple[str, int]:
    from .parallel.shard import run_sharded
    from .runtime.pool import PoolPolicy

    power = PowerLaw(args.alpha)
    inst = _workload(args)
    if args.algorithm == "nc_par" and not inst.is_uniform_density():
        raise SystemExit("shard --algorithm nc_par requires --densities unit")
    trace_lines: list[str] = []
    trace_ok = True
    context = None
    recorder = None
    if args.trace:
        from .core.shadow import SimulationContext
        from .core.tracing import JsonlRecorder

        recorder = JsonlRecorder(args.trace)
        context = SimulationContext(power, recorder=recorder)
        context.emit(
            "run_meta",
            0.0,
            "harness",
            alpha=args.alpha,
            instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
            algorithms=[args.algorithm],
        )
        if inst.is_uniform_density():
            # A traced single-machine pair gives the replayer a Lemma 3/4
            # target; the shard lifecycle events ride along in the same file.
            from .algorithms import simulate_clairvoyant, simulate_nc_uniform

            simulate_clairvoyant(inst, power, context=context)
            simulate_nc_uniform(inst, power, context=context)
    try:
        result = run_sharded(
            inst,
            power,
            args.machines,
            algorithm=args.algorithm,
            n_shards=args.n_shards,
            policy=PoolPolicy(workers=args.workers),
            context=context,
            checkpoint_dir=args.checkpoint_dir,
            force_serial=args.serial,
        )
    finally:
        if recorder is not None:
            recorder.close()
    if args.trace:
        from .parallel.shard import verify_shard_trace

        trace_report = verify_shard_trace(args.trace)
        trace_ok = trace_report.ok
        checks = ", ".join(
            f"{'PASS' if c.holds else 'FAIL'} {c.name}" for c in trace_report.checks
        ) or "no replayable pair"
        trace_lines = [
            "",
            f"trace written to {args.trace} ({trace_report.n_events} events); "
            f"streamed re-verification: {'OK' if trace_ok else 'FAILED'} ({checks})",
        ]
    serial = result.cluster.report()
    bit_identical = result.report == serial
    rows = [
        ["sharded", result.report.energy, result.report.fractional_flow,
         result.report.fractional_objective],
        ["serial", serial.energy, serial.fractional_flow, serial.fractional_objective],
    ]
    stats = result.stats
    mode = (
        "serial (forced)" if stats is None
        else f"pool: {stats.workers_spawned} workers, {stats.dispatched} dispatches, "
        f"{stats.redispatched} redispatched, {stats.workers_lost} lost"
        + (", DEGRADED" if stats.degraded else "")
    )
    table = format_table(
        ["path", "energy", "frac flow", "G_frac"],
        rows,
        title=f"{args.algorithm} sharded over {len(result.shards)} shards / "
        f"{args.machines} machines ({mode}); resumed {result.resumed} from "
        f"checkpoint; bit-identical: {bit_identical}",
        floatfmt=".6g",
    )
    return table + "\n".join(trace_lines), 0 if (bit_identical and trace_ok) else 1


def _verify_stream(events, *, progress_every: int, reopen=None) -> tuple[str, int]:
    """Stream ``events`` through the one-pass verifier; render report or error.

    Progress lines go straight to stdout (the caller's return text follows
    them); a :class:`~repro.core.errors.ScheduleError` — e.g. a torn final
    attempt in a live tail — comes back as a nonzero-exit verdict instead of
    a traceback.  ``reopen`` (a zero-arg callable yielding a fresh iterator
    over the same trace) enables the in-memory fallback when the one-pass
    replayer refuses an out-of-order kernel stream.
    """
    from .analysis.streaming import StreamOrderError, StreamingReportBuilder
    from .analysis.trace_report import REL_TOL, build_report_in_memory, format_report
    from .core.errors import ScheduleError

    builder = StreamingReportBuilder(rel_tol=REL_TOL)
    n = 0
    try:
        for e in events:
            builder.feed(e)
            n += 1
            if progress_every > 0 and n % progress_every == 0:
                print(f"  ... {n} events verified", flush=True)
        report = builder.finish()
    except StreamOrderError as exc:
        # The one-pass replayer refuses out-of-order kernel streams; the
        # list-materializing twin sorts before summing, so re-read the trace
        # through it when the source can be reopened.
        if reopen is None:
            return (
                f"streaming replay refused after {n} events: {exc}\n"
                "(re-run with --replay on the finished trace to use the "
                "in-memory fallback)",
                1,
            )
        print(f"  streaming replay refused ({exc}); falling back to in-memory")
        report = build_report_in_memory(reopen())
    except ScheduleError as exc:
        return (
            f"verified {n} events, then replay FAILED: {exc}\n"
            "(partial or corrupt trace — if the writer is still running, "
            "re-run --follow with a larger --idle-timeout)",
            1,
        )
    return format_report(report), 0 if report.ok else 1


def _trace_source(path: str):
    """Resolve a ``--replay`` path to an event iterator.

    Accepts a plain/gzip JSONL file, or the *base* path of a rotated sink
    (``trace.jsonl`` finds ``trace.00000.jsonl`` …) whose segment headers
    are stripped so the stream reads as one trace.
    """
    from pathlib import Path

    from .core.tracing import iter_trace, rotated_paths

    p = Path(path)
    if p.exists():
        return iter_trace([p])
    segments = rotated_paths(p)
    if segments:
        return iter_trace(segments)
    raise SystemExit(f"no trace at {path} (and no rotated segments {p.stem}.NNNNN*)")


def _cmd_trace(args: argparse.Namespace) -> str | tuple[str, int]:
    import json

    from .algorithms import simulate_clairvoyant, simulate_nc_uniform
    from .analysis.trace_report import build_report, format_report
    from .core.errors import InvalidInstanceError
    from .core.shadow import SimulationContext
    from .core.tracing import JsonlRecorder, follow_jsonl, iter_trace

    if args.replay is not None and args.follow is not None:
        raise SystemExit("--replay and --follow are mutually exclusive")
    if args.replay is not None:
        text, code = _verify_stream(
            _trace_source(args.replay),
            progress_every=args.progress_every,
            reopen=lambda: _trace_source(args.replay),
        )
        return f"replaying {args.replay}\n" + text, code
    if args.follow is not None:
        text, code = _verify_stream(
            follow_jsonl(
                args.follow,
                poll_interval=args.poll,
                idle_timeout=args.idle_timeout,
            ),
            progress_every=args.progress_every,
        )
        return f"followed {args.follow} to idle\n" + text, code

    if args.case is not None:
        if args.corpus is None:
            raise SystemExit("--case requires --corpus")
        corpus = json.loads(open(args.corpus, encoding="utf-8").read())
        if args.case not in corpus:
            raise SystemExit(
                f"case {args.case!r} not in corpus ({len(corpus)} entries)"
            )
        entry = corpus[args.case]
        inst = Instance(
            [Job(int(j), r, v, d) for j, r, v, d in entry["instance"]]
        )
        alpha = float(entry["alpha"])
    else:
        inst = _workload(args)
        alpha = args.alpha
    power = PowerLaw(alpha)
    if not inst.is_uniform_density():
        raise InvalidInstanceError(
            "trace requires a uniform-density instance (Lemma 3/4 replay); "
            "use --densities unit or a nc_uniform/ corpus case"
        )

    with JsonlRecorder(args.out, sink=args.sink) as recorder:
        context = SimulationContext(power, recorder=recorder)
        context.emit(
            "run_meta",
            0.0,
            "harness",
            alpha=alpha,
            instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
            algorithms=["C", "NC"],
        )
        simulate_clairvoyant(inst, power, context=context)
        simulate_nc_uniform(inst, power, context=context)

    # Read back through the sink's own paths (a rotate sink writes numbered
    # segments, not args.out itself) in one streaming pass, keeping only the
    # first --events for display.
    paths = recorder.paths
    shown: list = []

    def _stream():
        for e in iter_trace(paths):
            if len(shown) < args.events:
                shown.append(e)
            yield e

    report = build_report(_stream())
    where = ", ".join(str(p) for p in paths)
    out = [f"trace written to {where} ({report.n_events} events)"]
    if args.events > 0:
        out.append("")
        for e in shown:
            payload = ", ".join(f"{k}={v}" for k, v in e.payload.items())
            out.append(
                f"  [{e.component:>10}] {e.kind:<18} sim_t={e.sim_time:<12.6g} {payload}"
            )
        if report.n_events > args.events:
            out.append(f"  ... ({report.n_events - args.events} more)")
    out.append("")
    out.append(format_report(report))
    return "\n".join(out)


_DISPATCH = {
    "run": _cmd_run,
    "trace": _cmd_trace,
    "opt": _cmd_opt,
    "verify": _cmd_verify,
    "ratio": _cmd_ratio,
    "table1": _cmd_table1,
    "figures": _cmd_figures,
    "lower-bound": _cmd_lower_bound,
    "cluster": _cmd_cluster,
    "chaos": _cmd_chaos,
    "shard": _cmd_shard,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Run one command.  Handlers return either a string (exit 0) or a
    ``(text, exit_code)`` pair — ``verify`` and ``chaos`` use the latter to
    fail loudly when a checked claim does."""
    args = build_parser().parse_args(argv)
    out = _DISPATCH[args.command](args)
    text, code = out if isinstance(out, tuple) else (out, 0)
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
