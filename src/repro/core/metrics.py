"""Objective evaluation: energy, fractional and integral weighted flow-time.

Definitions follow §2 of the paper exactly:

* energy             ``E = ∫ P(s(t)) dt``
* fractional flow    ``F[j] = rho[j] * ∫_{r[j]}^{∞} V[j](t) dt``
* integral flow      ``F_int[j] = W[j] * (c[j] - r[j])``
* objectives         ``G_frac = E + Σ F[j]``,  ``G_int = E + Σ F_int[j]``

Because segments carry analytic profiles, everything here is closed-form; the
only numerics are sums.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ScheduleError
from .job import Instance
from .power import PowerFunction
from .schedule import Schedule

__all__ = ["CostReport", "evaluate", "validate_schedule"]

_VOL_TOL = 1e-6


@dataclass(frozen=True)
class CostReport:
    """Per-job and aggregate costs of one schedule on one instance."""

    energy: float
    fractional_flow_by_job: dict[int, float]
    integral_flow_by_job: dict[int, float]
    completion_times: dict[int, float]

    @property
    def fractional_flow(self) -> float:
        return sum(self.fractional_flow_by_job.values())

    @property
    def integral_flow(self) -> float:
        return sum(self.integral_flow_by_job.values())

    @property
    def fractional_objective(self) -> float:
        """``G_frac`` — fractional weighted flow-time plus energy."""
        return self.energy + self.fractional_flow

    @property
    def integral_objective(self) -> float:
        """``G_int`` — integral weighted flow-time plus energy."""
        return self.energy + self.integral_flow

    @property
    def makespan(self) -> float:
        return max(self.completion_times.values())

    def merged_with(self, other: "CostReport") -> "CostReport":
        """Combine reports of disjoint job sets (e.g. per-machine reports)."""
        overlap = set(self.completion_times) & set(other.completion_times)
        if overlap:
            raise ScheduleError(f"cannot merge reports sharing jobs {sorted(overlap)}")
        return CostReport(
            energy=self.energy + other.energy,
            fractional_flow_by_job={**self.fractional_flow_by_job, **other.fractional_flow_by_job},
            integral_flow_by_job={**self.integral_flow_by_job, **other.integral_flow_by_job},
            completion_times={**self.completion_times, **other.completion_times},
        )


def validate_schedule(schedule: Schedule, instance: Instance, vol_tol: float = _VOL_TOL) -> None:
    """Check the schedule is feasible for the instance.

    * every segment's job belongs to the instance,
    * no job is processed before its release,
    * every job receives exactly its volume (relative tolerance ``vol_tol``).

    Raises :class:`ScheduleError` on any violation.
    """
    for seg in schedule:
        if seg.job_id is None:
            continue
        if seg.job_id not in instance:
            raise ScheduleError(f"segment references unknown job {seg.job_id}")
        release = instance[seg.job_id].release
        if seg.t0 < release - 1e-9 * max(1.0, release):
            raise ScheduleError(
                f"job {seg.job_id} processed at {seg.t0} before release {release}"
            )
    for job in instance:
        got = schedule.processed_volume(job.job_id)
        if abs(got - job.volume) > vol_tol * max(1.0, job.volume):
            raise ScheduleError(
                f"job {job.job_id} processed volume {got}, requires {job.volume}"
            )


def evaluate(
    schedule: Schedule,
    instance: Instance,
    power: PowerFunction,
    *,
    validate: bool = True,
) -> CostReport:
    """Exact costs of ``schedule`` on ``instance`` under ``power``."""
    if validate:
        validate_schedule(schedule, instance)

    energy = sum(seg.energy(power) for seg in schedule)

    completions: dict[int, float] = {}
    frac: dict[int, float] = {}
    integ: dict[int, float] = {}
    for job in instance:
        c = schedule.completion_time(job.job_id, job.volume)
        completions[job.job_id] = c
        integ[job.job_id] = job.weight * (c - job.release)
        frac[job.job_id] = job.density * _remaining_volume_integral(schedule, job.job_id, job.release, c, job.volume)

    return CostReport(
        energy=energy,
        fractional_flow_by_job=frac,
        integral_flow_by_job=integ,
        completion_times=completions,
    )


def _remaining_volume_integral(
    schedule: Schedule, job_id: int, release: float, completion: float, volume: float
) -> float:
    """``∫_{release}^{completion} V_j(t) dt`` computed exactly segment by segment."""
    total = 0.0
    remaining = volume
    cursor = release
    for seg in schedule:
        if seg.t1 <= cursor or seg.t0 >= completion:
            continue
        a = max(seg.t0, cursor)
        b = min(seg.t1, completion)
        if b <= a:
            continue
        # Gap (idle or unsorted coverage) before this segment: V_j constant.
        if a > cursor:
            total += remaining * (a - cursor)
        if seg.job_id != job_id:
            total += remaining * (b - a)
        else:
            la, lb = a - seg.t0, b - seg.t0
            v_la = seg.volume_until(la)
            v_lb = seg.volume_until(lb)
            # ∫_{la}^{lb} (remaining - (vol(u) - vol(la))) du, all closed form.
            inner = (seg.flow_integral(lb) - seg.flow_integral(la)) - v_la * (lb - la)
            total += remaining * (lb - la) - inner
            remaining = max(remaining - (v_lb - v_la), 0.0)
        cursor = b
    if cursor < completion:
        total += remaining * (completion - cursor)
    return total
