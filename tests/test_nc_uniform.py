"""Tests for Algorithm NC (§3) — the paper's headline single-machine result.

The centrepieces are exact reproductions of:
* Lemma 3  — energy(NC) == energy(C),
* Lemma 4  — flow(NC) == flow(C) / (1 - 1/alpha),
* Lemma 6  — the speed profiles are measure-preserving rearrangements,
* Lemma 8  — integral flow(NC) <= (2 - 1/(alpha-1)) ... (via its proof form
  F_int <= (2 - 1/alpha) * F_frac),
* Theorems 5/9 — the competitive ratios against certified lower bounds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Instance, Job, PowerLaw
from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.analysis.curves import speed_quantile_gap
from repro.core.errors import InvalidInstanceError
from repro.core.metrics import evaluate
from repro.offline.bounds import opt_fractional_lower_bound, opt_integral_lower_bound

from conftest import alphas, robust_alphas, uniform_instances


class TestStructure:
    def test_fifo_order(self, cube):
        # Even when a later job is tiny, FIFO finishes the earlier one first.
        inst = Instance([Job(0, 0.0, 10.0), Job(1, 0.1, 0.01)])
        run = simulate_nc_uniform(inst, cube)
        assert run.completion_time(0) < run.completion_time(1)

    def test_one_growth_segment_per_job(self, cube, three_jobs):
        run = simulate_nc_uniform(three_jobs, cube)
        assert len(run.schedule) == len(three_jobs)

    def test_rejects_nonuniform(self, cube, mixed_density_jobs):
        with pytest.raises(InvalidInstanceError):
            simulate_nc_uniform(mixed_density_jobs, cube)

    def test_nonunit_uniform_density_accepted(self, cube):
        inst = Instance([Job(0, 0.0, 1.0, 2.5), Job(1, 0.5, 2.0, 2.5)])
        run = simulate_nc_uniform(inst, cube)
        assert run.completion_time(1) > run.completion_time(0)

    def test_first_job_offset_zero(self, cube, three_jobs):
        run = simulate_nc_uniform(three_jobs, cube)
        assert run.offsets[0] == 0.0

    def test_offsets_match_full_clairvoyant_run(self, cube, three_jobs):
        """W^C(r[j]-) computed on the prefix equals the value read off a full
        Algorithm C run — releases after r[j] cannot affect C's past."""
        run = simulate_nc_uniform(three_jobs, cube)
        full = simulate_clairvoyant(three_jobs, cube)
        for job in three_jobs:
            expect = full.remaining_weight_at(job.release, include_release_at_t=False)
            assert run.offsets[job.job_id] == pytest.approx(expect, rel=1e-9)

    def test_speed_rule_initial_speed(self, cube):
        """While processing j, P(s) = offset + processed weight: at the start
        of job j the speed is offset^{1/alpha}."""
        inst = Instance([Job(0, 0.0, 4.0), Job(1, 1.0, 2.0)])
        run = simulate_nc_uniform(inst, cube)
        start1 = run.starts[1]
        assert run.schedule.speed_at(start1 + 1e-9) == pytest.approx(
            run.offsets[1] ** (1 / 3), rel=1e-3
        )

    def test_never_idles_while_backlogged(self, cube, three_jobs):
        run = simulate_nc_uniform(three_jobs, cube)
        segs = run.schedule.segments
        for a, b in zip(segs, segs[1:]):
            gap = b.t0 - a.t1
            # A gap may only occur when no job is active: the next job's
            # release must equal the gap's end.
            if gap > 1e-9:
                assert three_jobs[b.job_id].release == pytest.approx(b.t0, rel=1e-9)


class TestLemma3EnergyEquality:
    @given(uniform_instances(max_jobs=7), robust_alphas)
    @settings(max_examples=40, deadline=None)
    def test_exact_energy_equality(self, inst, alpha):
        power = PowerLaw(alpha)
        e_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power).energy
        e_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).energy
        assert e_nc == pytest.approx(e_c, rel=1e-7)

    @given(uniform_instances(max_jobs=6), alphas)
    @settings(max_examples=30, deadline=None)
    def test_energy_equality_small_alpha_loose(self, inst, alpha):
        """Near alpha = 1 only a looser tolerance is float-achievable."""
        power = PowerLaw(alpha)
        e_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power).energy
        e_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).energy
        assert e_nc == pytest.approx(e_c, rel=1e-4)

    def test_nonunit_density(self):
        power = PowerLaw(2.2)
        inst = Instance([Job(0, 0.0, 1.0, 3.0), Job(1, 0.3, 2.0, 3.0), Job(2, 0.9, 0.5, 3.0)])
        e_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power).energy
        e_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).energy
        assert e_nc == pytest.approx(e_c, rel=1e-9)


class TestLemma4FlowRatio:
    @given(uniform_instances(max_jobs=7), robust_alphas)
    @settings(max_examples=40, deadline=None)
    def test_exact_flow_ratio(self, inst, alpha):
        power = PowerLaw(alpha)
        f_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power).fractional_flow
        f_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).fractional_flow
        assert f_nc == pytest.approx(f_c / (1 - 1 / alpha), rel=1e-6)

    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_machine_precision_at_reference_alphas(self, alpha, three_jobs):
        power = PowerLaw(alpha)
        f_nc = evaluate(simulate_nc_uniform(three_jobs, power).schedule, three_jobs, power).fractional_flow
        f_c = evaluate(simulate_clairvoyant(three_jobs, power).schedule, three_jobs, power).fractional_flow
        assert f_nc == pytest.approx(f_c / (1 - 1 / alpha), rel=1e-12)


class TestLemma6SpeedProfiles:
    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=15, deadline=None)
    def test_speed_distributions_match(self, inst):
        """A measure-preserving time remap preserves the speed distribution;
        compare quantile functions of the two schedules."""
        power = PowerLaw(3.0)
        nc = simulate_nc_uniform(inst, power).schedule
        c = simulate_clairvoyant(inst, power).schedule
        assert speed_quantile_gap(nc, c, samples=4096) < 3e-3

    def test_total_durations_match(self, cube, three_jobs):
        nc = simulate_nc_uniform(three_jobs, cube).schedule
        c = simulate_clairvoyant(three_jobs, cube).schedule
        assert nc.end_time == pytest.approx(c.end_time, rel=1e-9)


class TestLemma8IntegralVsFractional:
    @given(uniform_instances(max_jobs=6), robust_alphas)
    @settings(max_examples=30, deadline=None)
    def test_integral_flow_bound(self, inst, alpha):
        """From the proof of Lemma 8: dF_int <= (1 + (1 - 1/alpha)) dF, so
        F_int(NC) <= (2 - 1/alpha) * F_frac(NC)."""
        power = PowerLaw(alpha)
        rep = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
        bound = (2.0 - 1.0 / alpha) * rep.fractional_flow
        assert rep.integral_flow <= bound * (1 + 1e-9)


class TestTheorems5And9:
    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0, 4.0])
    def test_fractional_ratio_on_stress_instance(self, alpha):
        power = PowerLaw(alpha)
        inst = Instance(
            [Job(0, 0.0, 5.0), Job(1, 0.4, 0.2), Job(2, 0.8, 2.0), Job(3, 1.0, 0.7)]
        )
        rep = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
        lb = opt_fractional_lower_bound(inst, power, slots=250, iterations=1200)
        assert rep.fractional_objective / lb.value <= 2.0 + 1.0 / (alpha - 1.0) + 1e-6

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0, 4.0])
    def test_integral_ratio_on_stress_instance(self, alpha):
        power = PowerLaw(alpha)
        inst = Instance(
            [Job(0, 0.0, 5.0), Job(1, 0.4, 0.2), Job(2, 0.8, 2.0), Job(3, 1.0, 0.7)]
        )
        rep = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
        lb = opt_integral_lower_bound(inst, power, slots=250, iterations=1200)
        assert rep.integral_objective / lb.value <= 3.0 + 1.0 / (alpha - 1.0) + 1e-6

    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=10, deadline=None)
    def test_fractional_ratio_property(self, inst):
        """Ratio against cost(C)/2 (Theorem 1 surrogate) — pure algebra of
        Lemmas 3/4 gives at most 2 + 1/(alpha-1) * ... = exactly
        1 + 1/(1-1/alpha) times cost(C)/cost(C) ... asserted via the direct
        objective comparison."""
        alpha = 3.0
        power = PowerLaw(alpha)
        g_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power).fractional_objective
        g_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).fractional_objective
        # Lemmas 3+4 imply G_nc = (1/2 + (1/2)/(1-1/alpha)) * G_c exactly.
        expect = 0.5 * (1 + 1 / (1 - 1 / alpha)) * g_c
        assert g_nc == pytest.approx(expect, rel=1e-8)
